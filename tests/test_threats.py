"""Adversarial clients: seeded threat scenarios × robust aggregation rules.

Load-bearing properties (PR 7):

* a :class:`ThreatPlan` marks clients Byzantine by counter-derived draws
  keyed on ``(plan seed, round, cid)`` — attacker selection, poisoned
  shards, and poisoned updates are **bit-identical** across
  serial/thread/process backends at any worker count, sync or async at
  any pipeline depth;
* an inactive plan (``byzantine_prob=0``) reproduces the clean run bit
  for bit, and ``aggregation_rule="fedavg"`` delegates byte-for-byte to
  the historical weighted average;
* every attacker (label-flip, backdoor, sign-flip, gaussian,
  model-replacement) composes with every rule (fedavg, median,
  trimmed-mean, Krum, norm-clip) under sync and pipelined-async
  aggregation, with no baseline-specific attack code;
* robust rules journal their rejection/clipping decisions, compose with
  FedRBN's dual-BN merge, the partial-training masked average, and
  FedProphet's per-module merges, and structurally impossible pairings
  (Krum × masked sub-models, backdoor × frozen-prefix cache) are refused
  at construction time with actionable errors.
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro.baselines import FedDFAT, FedRBN, HeteroFLAT, JointFAT
from repro.core import FedProphet, FedProphetConfig
from repro.data import ArrayDataset, make_cifar10_like
from repro.flsim import (
    AggregationError,
    ATTACKS,
    FaultPlan,
    FLConfig,
    RobustAggregator,
    RunJournal,
    ThreatPlan,
    clipped_norm_average,
    coordinate_median,
    krum_scores,
    krum_select,
    masked_robust_average,
    trimmed_mean,
    weighted_average_states,
)
from repro.models import build_cnn
from repro.nn.normalization import DualBatchNorm2d

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

MATRIX_RULES = ("fedavg", "median", "trimmed_mean", "krum", "norm_clip")


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=10, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _dual_builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng, bn_cls=DualBatchNorm2d)


def _cfg(cls=FLConfig, **overrides):
    defaults = dict(
        num_clients=6, clients_per_round=4, local_iters=2, batch_size=8,
        lr=0.02, rounds=3, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, eval_max_samples=24, seed=0,
    )
    if cls is FedProphetConfig:
        defaults.update(rounds_per_module=2, patience=5, r_min_fraction=0.4,
                        val_samples=16, val_pgd_steps=2)
    defaults.update(overrides)
    return cls(**defaults)


def _plan(attack="sign_flip", prob=0.4, **kw):
    return ThreatPlan(seed=7, byzantine_prob=prob, attack=attack, **kw)


def _state(exp):
    return {k: v.copy() for k, v in exp.global_model.state_dict().items()}


def _assert_states_equal(a, b, label=""):
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k], err_msg=f"{label}{k}")


def _run_jfat(plan, rule, mode="sync", backend="serial", workers=None, **kw):
    cfg = _cfg(
        threat_plan=plan, aggregation_rule=rule,
        executor_backend=backend, round_parallelism=workers,
        aggregation_mode=mode,
        pipeline_depth=2 if mode == "async" else 1,
        **kw,
    )
    exp = JointFAT(_task(), _builder, cfg)
    exp.run()
    return exp


def _toy_states(n=5, shape=(3,), seed=0):
    rng = np.random.default_rng(seed)
    return [
        {"w": rng.normal(size=shape), "b": rng.normal(size=(2,))}
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# ThreatPlan unit surface
# ---------------------------------------------------------------------------


class TestThreatPlanValidation:
    def test_byzantine_prob_range(self):
        with pytest.raises(ValueError, match="byzantine_prob"):
            ThreatPlan(byzantine_prob=1.5)
        with pytest.raises(ValueError, match="byzantine_prob"):
            ThreatPlan(byzantine_prob=-0.1)

    def test_unknown_attack(self):
        with pytest.raises(ValueError, match="attack"):
            ThreatPlan(attack="rickroll")

    def test_backdoor_fraction_range(self):
        with pytest.raises(ValueError, match="backdoor_fraction"):
            ThreatPlan(backdoor_fraction=1.2)

    def test_trigger_size_positive(self):
        with pytest.raises(ValueError, match="trigger_size"):
            ThreatPlan(trigger_size=0)

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="end_round"):
            ThreatPlan(start_round=5, end_round=5)

    def test_json_round_trip(self):
        plan = _plan("backdoor", backdoor_fraction=0.5, trigger_size=3)
        assert ThreatPlan.from_json(plan.to_json()) == plan

    def test_unknown_field_named_in_error(self):
        with pytest.raises(ValueError, match="byzantine_probb"):
            ThreatPlan.from_json('{"byzantine_probb": 0.3}')

    def test_type_mismatch_named_in_error(self):
        with pytest.raises(ValueError, match="byzantine_prob"):
            ThreatPlan.from_json('{"byzantine_prob": "lots"}')

    def test_parse_inline_and_file(self, tmp_path):
        inline = ThreatPlan.parse('{"seed": 3, "byzantine_prob": 0.2}')
        assert inline.seed == 3 and inline.byzantine_prob == 0.2
        path = tmp_path / "plan.json"
        path.write_text(inline.to_json())
        assert ThreatPlan.parse(str(path)) == inline

    def test_config_coerces_dict(self):
        cfg = _cfg(threat_plan={"seed": 1, "byzantine_prob": 0.1})
        assert isinstance(cfg.threat_plan, ThreatPlan)
        assert cfg.threat_plan.seed == 1

    def test_config_validates_rule_knobs(self):
        with pytest.raises(ValueError, match="aggregation_rule"):
            _cfg(aggregation_rule="mode")
        with pytest.raises(ValueError, match="trim_ratio"):
            _cfg(trim_ratio=0.5)
        with pytest.raises(ValueError, match="krum_byzantine_f"):
            _cfg(krum_byzantine_f=-1)
        with pytest.raises(ValueError, match="clip_norm"):
            _cfg(clip_norm=0.0)


class TestByzantineSelection:
    def test_pure_in_seed_round_cid(self):
        plan = _plan(prob=0.5)
        draws = [plan.is_byzantine(3, 11) for _ in range(5)]
        assert len(set(draws)) == 1

    def test_inactive_plan_never_byzantine(self):
        plan = _plan(prob=0.0)
        assert not any(plan.is_byzantine(r, c) for r in range(10) for c in range(10))
        assert not plan.active

    def test_window_bounds_attack(self):
        plan = _plan(prob=1.0, start_round=2, end_round=4)
        assert [plan.is_byzantine(r, 0) for r in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_plan_round_positions_and_cids(self):
        plan = _plan(prob=1.0)
        threats = plan.plan_round(0, [10, 20, 30])
        assert threats.byzantine == [0, 1, 2]
        assert threats.byzantine_cids == [10, 20, 30]
        assert threats.attack == plan.attack

    def test_stream_independent_of_fault_plan(self):
        # Same seed, same (round, cid) grid: the threat stream must not
        # mirror the fault stream (domain separation).
        tplan = ThreatPlan(seed=9, byzantine_prob=0.5)
        fplan = FaultPlan(seed=9, dropout_prob=0.5)
        threat = [tplan.is_byzantine(r, c) for r in range(8) for c in range(8)]
        fault = [
            not fplan.outcome(r, c, 0).survived
            for r in range(8) for c in range(8)
        ]
        assert threat != fault

    def test_seed_changes_selection(self):
        grid_a = [
            ThreatPlan(seed=1, byzantine_prob=0.5).is_byzantine(r, c)
            for r in range(8) for c in range(8)
        ]
        grid_b = [
            ThreatPlan(seed=2, byzantine_prob=0.5).is_byzantine(r, c)
            for r in range(8) for c in range(8)
        ]
        assert grid_a != grid_b


class TestDataPoisoning:
    def test_label_flip_rotates_labels(self):
        ds = ArrayDataset(np.zeros((6, 3, 4, 4)), np.arange(6) % 3)
        plan = _plan("label_flip", flip_offset=1)
        poisoned = plan.poison_dataset(ds, 0, 0, num_classes=3)
        np.testing.assert_array_equal(poisoned.y, (np.arange(6) + 1) % 3)
        assert poisoned.x is ds.x  # inputs shared, labels-only attack

    def test_backdoor_stamps_trigger_and_relabels(self):
        x = np.zeros((4, 3, 8, 8))
        y = np.arange(4) % 3 + 1
        plan = _plan("backdoor", backdoor_target=0, trigger_size=2,
                     trigger_value=0.5)
        poisoned = plan.poison_dataset(ArrayDataset(x, y), 0, 0, num_classes=10)
        np.testing.assert_array_equal(poisoned.y, np.zeros(4, dtype=y.dtype))
        np.testing.assert_array_equal(
            poisoned.x[..., -2:, -2:], np.full((4, 3, 2, 2), 0.5)
        )
        assert poisoned.x[..., :6, :6].sum() == 0.0  # rest untouched
        assert x.sum() == 0.0  # original untouched

    def test_backdoor_fraction_and_determinism(self):
        x = np.zeros((10, 3, 8, 8))
        y = np.ones(10, dtype=np.int64)
        plan = _plan("backdoor", backdoor_fraction=0.5, backdoor_target=0)
        a = plan.poison_dataset(ArrayDataset(x, y), 2, 3, num_classes=10)
        b = plan.poison_dataset(ArrayDataset(x, y), 2, 3, num_classes=10)
        assert (a.y == 0).sum() == 5
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)
        # another (round, cid) picks a different sample subset eventually
        c = plan.poison_dataset(ArrayDataset(x, y), 3, 4, num_classes=10)
        assert (c.y == 0).sum() == 5

    def test_update_attack_rejects_poison_dataset(self):
        ds = ArrayDataset(np.zeros((2, 3, 4, 4)), np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError, match="not a data attack"):
            _plan("sign_flip").poison_dataset(ds, 0, 0, 10)


class TestUpdatePoisoning:
    def _base_and_state(self):
        base = {"w": np.full((3,), 1.0), "n": np.array(5, dtype=np.int64)}
        state = {"w": np.full((3,), 2.0), "n": np.array(7, dtype=np.int64)}
        return base, state

    def test_sign_flip_negates_delta(self):
        base, state = self._base_and_state()
        out = _plan("sign_flip").poison_state(state, base, 0, 0)
        np.testing.assert_allclose(out["w"], np.zeros(3))  # 1 - (2-1)

    def test_model_replacement_boosts_delta(self):
        base, state = self._base_and_state()
        out = _plan("model_replacement", scale=10.0).poison_state(state, base, 0, 0)
        np.testing.assert_allclose(out["w"], np.full(3, 11.0))  # 1 + 10*(2-1)

    def test_gaussian_is_deterministic(self):
        base, state = self._base_and_state()
        plan = _plan("gaussian", noise_std=0.5)
        a = plan.poison_state(state, base, 1, 2)
        b = plan.poison_state(state, base, 1, 2)
        np.testing.assert_array_equal(a["w"], b["w"])
        assert not np.array_equal(a["w"], state["w"])
        c = plan.poison_state(state, base, 1, 3)  # другой client: other draws
        assert not np.array_equal(a["w"], c["w"])

    def test_integer_buffers_stay_honest(self):
        base, state = self._base_and_state()
        out = _plan("sign_flip").poison_state(state, base, 0, 0)
        assert out["n"] == state["n"]

    def test_mask_restricts_poisoning(self):
        base = {"w": np.zeros(4)}
        state = {"w": np.array([1.0, 0.0, 2.0, 0.0])}
        mask = {"w": np.array([1.0, 0.0, 1.0, 0.0])}
        out = _plan("sign_flip").poison_state(state, base, 0, 0, mask=mask)
        np.testing.assert_allclose(out["w"], np.array([-1.0, 0.0, -2.0, 0.0]))

    def test_poison_update_plain_dict(self):
        base, state = self._base_and_state()
        out = _plan("sign_flip").poison_update(state, base, 0, 0)
        np.testing.assert_allclose(out["w"], np.zeros(3))

    def test_poison_update_masked_triple(self):
        base = {"w": np.zeros(2)}
        update = ({"w": np.ones(2)}, {"w": np.array([1.0, 0.0])}, 3.0)
        out = _plan("sign_flip").poison_update(update, base, 0, 0)
        assert isinstance(out, tuple) and out[2] == 3.0
        np.testing.assert_allclose(out[0]["w"], np.array([-1.0, 1.0]))
        np.testing.assert_array_equal(out[1]["w"], update[1]["w"])

    def test_poison_update_prophet_tuple_keeps_heads_honest(self):
        base = {"seg": np.zeros(2)}
        seg = {"seg": np.ones(2)}
        heads = {"head": np.ones(2)}
        update = (seg, heads, 1.5, None)
        out = _plan("sign_flip").poison_update(update, base, 0, 0)
        np.testing.assert_allclose(out[0]["seg"], -np.ones(2))
        np.testing.assert_array_equal(out[1]["head"], heads["head"])
        assert out[2] == 1.5


# ---------------------------------------------------------------------------
# Robust aggregation rules (pure functions)
# ---------------------------------------------------------------------------


class TestRobustRules:
    def test_coordinate_median(self):
        states = [{"w": np.array([v])} for v in (1.0, 2.0, 100.0)]
        np.testing.assert_allclose(coordinate_median(states)["w"], [2.0])

    def test_trimmed_mean_drops_outliers(self):
        states = [{"w": np.array([v])} for v in (1.0, 2.0, 3.0, 1000.0)]
        merged, k = trimmed_mean(states, trim_ratio=0.25)
        assert k == 1
        np.testing.assert_allclose(merged["w"], [2.5])  # mean of 2, 3

    def test_trimmed_mean_clamps_small_cohorts(self):
        states = [{"w": np.array([v])} for v in (1.0, 5.0)]
        merged, k = trimmed_mean(states, trim_ratio=0.45)
        assert k == 0  # (n-1)//2 = 0: nothing to trim, plain mean
        np.testing.assert_allclose(merged["w"], [3.0])

    def test_krum_scores_outlier_highest(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([0.1])},
                  {"w": np.array([0.2])}, {"w": np.array([50.0])}]
        scores = krum_scores(states, byzantine_f=1)
        assert int(np.argmax(scores)) == 3

    def test_krum_select_counts(self):
        states = [{"w": np.array([float(i)])} for i in range(5)]
        assert len(krum_select(states, 1)) == 1
        assert len(krum_select(states, 1, multi=True)) == 4  # n - f

    def test_krum_degenerate_single_client(self):
        states = [{"w": np.array([3.0])}]
        assert krum_select(states, 1) == [0]

    def test_norm_clip_explicit_radius(self):
        base = {"w": np.zeros(1)}
        states = [{"w": np.array([0.5])}, {"w": np.array([10.0])}]
        merged, stats = clipped_norm_average(states, [1.0, 1.0], base, clip_norm=1.0)
        assert stats["clipped"] == 1
        np.testing.assert_allclose(merged["w"], [(0.5 + 1.0) / 2])

    def test_norm_clip_adaptive_radius_is_median(self):
        base = {"w": np.zeros(1)}
        states = [{"w": np.array([v])} for v in (1.0, 2.0, 30.0)]
        merged, stats = clipped_norm_average(states, [1, 1, 1], base, clip_norm=None)
        assert stats["clip_norm"] == pytest.approx(2.0)
        assert stats["clipped"] == 1
        np.testing.assert_allclose(merged["w"], [(1.0 + 2.0 + 2.0) / 3])

    def test_fedavg_rule_is_bitwise_weighted_average(self):
        states = _toy_states()
        weights = [1.0, 2.0, 3.0, 4.0, 5.0]
        merged, stats = RobustAggregator(rule="fedavg").aggregate(states, weights)
        assert stats is None
        _assert_states_equal(merged, weighted_average_states(states, weights))

    def test_empty_states_raise_typed_error(self):
        with pytest.raises(AggregationError, match="empty"):
            weighted_average_states([], [])
        with pytest.raises(AggregationError):
            RobustAggregator(rule="median").aggregate([], [])

    def test_norm_clip_requires_base(self):
        with pytest.raises(ValueError, match="base"):
            RobustAggregator(rule="norm_clip").aggregate(_toy_states(), [1] * 5)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="aggregation rule"):
            RobustAggregator(rule="majority_vote")

    def test_rules_are_deterministic(self):
        states = _toy_states(seed=3)
        weights = [1.0] * 5
        base = {k: np.zeros_like(v) for k, v in states[0].items()}
        for rule in ("median", "trimmed_mean", "krum", "multi_krum", "norm_clip"):
            agg = RobustAggregator(rule=rule)
            a, _ = agg.aggregate(states, weights, base=base)
            b, _ = agg.aggregate(states, weights, base=base)
            _assert_states_equal(a, b, label=rule)


class TestMaskedRobustAverage:
    def _updates(self):
        # Client 0 covers coords {0,1}; client 1 covers {1,2}; coord 3
        # is covered by nobody and must keep the global value.
        g = {"w": np.array([10.0, 10.0, 10.0, 10.0])}
        u0 = ({"w": np.array([1.0, 2.0, 0.0, 0.0])},
              {"w": np.array([1.0, 1.0, 0.0, 0.0])}, 1.0)
        u1 = ({"w": np.array([0.0, 4.0, 6.0, 0.0])},
              {"w": np.array([0.0, 1.0, 1.0, 0.0])}, 1.0)
        return g, [u0, u1]

    def test_median_respects_masks(self):
        g, updates = self._updates()
        merged, stats = masked_robust_average(
            g, updates, RobustAggregator(rule="median")
        )
        np.testing.assert_allclose(merged["w"], [1.0, 3.0, 6.0, 10.0])
        assert stats["rule"] == "median"

    def test_trimmed_mean_respects_masks(self):
        g, updates = self._updates()
        merged, _ = masked_robust_average(
            g, updates, RobustAggregator(rule="trimmed_mean", trim_ratio=0.4)
        )
        # n<=2 per coordinate: nothing trims, masked mean
        np.testing.assert_allclose(merged["w"], [1.0, 3.0, 6.0, 10.0])

    def test_norm_clip_masked(self):
        g = {"w": np.zeros(2)}
        honest = ({"w": np.array([0.5, 0.0])}, {"w": np.array([1.0, 0.0])}, 1.0)
        liar = ({"w": np.array([40.0, 0.0])}, {"w": np.array([1.0, 0.0])}, 1.0)
        merged, stats = masked_robust_average(
            g, [honest, liar], RobustAggregator(rule="norm_clip", clip_norm=1.0)
        )
        assert stats["clipped"] == 1
        np.testing.assert_allclose(merged["w"], [(0.5 + 1.0) / 2, 0.0])

    def test_krum_refused_for_masked_updates(self):
        g, updates = self._updates()
        with pytest.raises(AggregationError, match="homogeneous"):
            masked_robust_average(g, updates, RobustAggregator(rule="krum"))

    def test_empty_updates_raise(self):
        with pytest.raises(AggregationError, match="empty"):
            masked_robust_average({}, [], RobustAggregator(rule="median"))


# ---------------------------------------------------------------------------
# The attacker x rule scenario matrix
# ---------------------------------------------------------------------------


class TestThreatMatrix:
    @pytest.mark.parametrize("rule", MATRIX_RULES)
    @pytest.mark.parametrize("attack", ATTACKS)
    def test_cell_runs_sync_and_pipelined_async(self, attack, rule):
        plan = _plan(attack)
        for mode in ("sync", "async"):
            exp = _run_jfat(plan, rule, mode=mode)
            assert len(exp.history) == exp.config.rounds
            for value in exp.global_model.state_dict().values():
                assert np.all(np.isfinite(value))

    @pytest.mark.parametrize("mode", ["sync", "async"])
    @pytest.mark.parametrize(
        "attack,rule",
        [("label_flip", "krum"), ("model_replacement", "norm_clip")],
    )
    def test_bit_identical_across_backends_and_workers(self, attack, rule, mode):
        plan = _plan(attack)
        reference = _state(_run_jfat(plan, rule, mode=mode))
        for workers in (1, 2, 4):
            exp = _run_jfat(plan, rule, mode=mode, backend="thread", workers=workers)
            _assert_states_equal(reference, _state(exp), label=f"thread{workers}:")

    @pytest.mark.skipif(not HAS_FORK, reason="no fork start method")
    def test_bit_identical_on_process_backend(self):
        plan = _plan("label_flip")
        reference = _state(_run_jfat(plan, "median"))
        exp = _run_jfat(plan, "median", backend="process", workers=2)
        _assert_states_equal(reference, _state(exp), label="process:")


class TestCleanRunEquivalence:
    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_inactive_plan_is_bitwise_clean(self, mode):
        clean = _state(_run_jfat(None, "fedavg", mode=mode))
        off = _state(_run_jfat(_plan(prob=0.0), "fedavg", mode=mode))
        _assert_states_equal(clean, off)

    def test_window_excludes_all_rounds(self):
        clean = _state(_run_jfat(None, "fedavg"))
        later = _state(_run_jfat(_plan(prob=1.0, start_round=50), "fedavg"))
        _assert_states_equal(clean, later)

    def test_attack_actually_changes_the_run(self):
        clean = _state(_run_jfat(None, "fedavg"))
        attacked = _state(_run_jfat(_plan(prob=1.0), "fedavg"))
        assert any(not np.array_equal(clean[k], attacked[k]) for k in clean)


# ---------------------------------------------------------------------------
# Engine integration: journal, abort path, defence effect
# ---------------------------------------------------------------------------


class TestThreatJournal:
    def test_threats_events_match_plan(self, tmp_path):
        plan = _plan("label_flip", prob=0.6)
        journal_path = str(tmp_path / "run.jsonl")
        exp = _run_jfat(plan, "fedavg", journal_path=journal_path)
        events = RunJournal.read(journal_path)
        threat_events = [e for e in events if e["kind"] == "threats"]
        samples = {e["round"]: e["cids"] for e in events if e["kind"] == "sample"}
        assert threat_events  # prob 0.6 over 3x4 draws: effectively certain
        for event in threat_events:
            expected = plan.plan_round(event["round"], samples[event["round"]])
            assert event["byzantine"] == expected.byzantine_cids
            assert event["attack"] == "label_flip"

    def test_sync_agg_events_record_rule_stats(self, tmp_path):
        journal_path = str(tmp_path / "run.jsonl")
        exp = _run_jfat(_plan(), "krum", journal_path=journal_path)
        agg = [e for e in RunJournal.read(journal_path) if e["kind"] == "agg"]
        assert len(agg) == exp.config.rounds
        for event in agg:
            (stats,) = event["events"]
            assert stats["rule"] == "krum"
            assert len(stats["selected"]) == 1
            assert len(stats["selected"]) + len(stats["rejected"]) == stats["n"]

    def test_async_merge_events_carry_agg_stats(self, tmp_path):
        journal_path = str(tmp_path / "run.jsonl")
        _run_jfat(_plan(), "median", mode="async", journal_path=journal_path)
        merges = [
            e for e in RunJournal.read(journal_path) if e["kind"] == "merge"
        ]
        assert merges
        for event in merges:
            assert event["agg"][0]["rule"] == "median"

    def test_journal_is_json_serialisable_end_to_end(self, tmp_path):
        journal_path = str(tmp_path / "run.jsonl")
        _run_jfat(_plan("backdoor"), "norm_clip", mode="async",
                  journal_path=journal_path)
        for line in open(journal_path, encoding="utf-8"):
            json.loads(line)


class TestAggregationAbort:
    def test_agg_error_aborts_round_and_journals(self, tmp_path):
        class Exploding(JointFAT):
            def run_round(self, round_idx, clients, states):
                if round_idx == 1:
                    raise AggregationError("synthetic empty cohort")
                return super().run_round(round_idx, clients, states)

        journal_path = str(tmp_path / "run.jsonl")
        exp = Exploding(_task(), _builder, _cfg(journal_path=journal_path))
        before_round_1 = None
        history = exp.run()
        aborted = [r for r in history if r.aborted]
        assert [r.round for r in aborted] == [1]
        events = RunJournal.read(journal_path)
        agg_aborts = [e for e in events if e["kind"] == "agg_abort"]
        assert len(agg_aborts) == 1
        assert agg_aborts[0]["round"] == 1
        assert "synthetic empty cohort" in agg_aborts[0]["error"]

    def test_aborted_round_leaves_model_untouched(self):
        class Exploding(JointFAT):
            def run_round(self, round_idx, clients, states):
                raise AggregationError("always")

        exp = Exploding(_task(), _builder, _cfg(rounds=2))
        before = _state(exp)
        history = exp.run()
        assert all(r.aborted for r in history)
        _assert_states_equal(before, _state(exp))

    def test_min_clients_fault_abort_still_works_with_robust_rule(self):
        # Full dropout: the fault layer's min-clients abort fires before
        # aggregation ever sees an empty cohort, with any rule.
        exp = JointFAT(
            _task(), _builder,
            _cfg(aggregation_rule="median",
                 fault_plan=FaultPlan(seed=0, dropout_prob=1.0),
                 min_clients_per_round=2),
        )
        history = exp.run()
        assert all(r.aborted for r in history)


class TestDefenceEffect:
    def test_krum_rejects_model_replacement(self):
        # A scale-25 replacement attack: Krum's selection must keep the
        # defended weights close to clean while FedAvg is dragged away.
        plan = _plan("model_replacement", prob=0.4, scale=25.0)
        clean = _state(_run_jfat(None, "fedavg"))
        fedavg = _state(_run_jfat(plan, "fedavg"))
        krum = _state(_run_jfat(plan, "krum"))

        def dist(a):
            return float(
                np.sqrt(sum(float(((a[k] - clean[k]) ** 2).sum()) for k in a))
            )

        assert dist(krum) < dist(fedavg)

    def test_norm_clip_bounds_model_replacement(self):
        plan = _plan("model_replacement", prob=0.4, scale=25.0)
        clean = _state(_run_jfat(None, "fedavg"))
        fedavg = _state(_run_jfat(plan, "fedavg"))
        clipped = _state(_run_jfat(plan, "norm_clip", clip_norm=2.0))

        def dist(a):
            return float(
                np.sqrt(sum(float(((a[k] - clean[k]) ** 2).sum()) for k in a))
            )

        assert dist(clipped) < dist(fedavg)


# ---------------------------------------------------------------------------
# Baseline families under threats + robust rules
# ---------------------------------------------------------------------------


class TestBaselineComposition:
    @pytest.mark.parametrize("rule", ["median", "norm_clip"])
    def test_fedrbn_robust_sync_and_async(self, rule):
        for mode in ("sync", "async"):
            exp = FedRBN(
                _task(), _dual_builder,
                _cfg(threat_plan=_plan(), aggregation_rule=rule,
                     aggregation_mode=mode),
            )
            exp.run()
            assert len(exp.history) == exp.config.rounds

    def test_fedrbn_sync_matches_staleness_zero_async(self):
        cfg = dict(threat_plan=_plan(), aggregation_rule="median")
        sync = FedRBN(_task(), _dual_builder, _cfg(**cfg))
        sync.run()
        zero = FedRBN(
            _task(), _dual_builder,
            _cfg(aggregation_mode="async", max_staleness=0, **cfg),
        )
        zero.run()
        _assert_states_equal(_state(sync), _state(zero))

    @pytest.mark.parametrize("rule", ["median", "trimmed_mean", "norm_clip"])
    def test_partial_family_robust_rules(self, rule):
        for mode in ("sync", "async"):
            exp = HeteroFLAT(
                _task(), _builder,
                _cfg(threat_plan=_plan(), aggregation_rule=rule,
                     aggregation_mode=mode),
            )
            exp.run()
            assert len(exp.history) == exp.config.rounds

    def test_partial_family_refuses_krum(self):
        with pytest.raises(ValueError, match="Krum"):
            HeteroFLAT(_task(), _builder, _cfg(aggregation_rule="krum"))
        with pytest.raises(ValueError, match="Krum"):
            HeteroFLAT(_task(), _builder, _cfg(aggregation_rule="multi_krum"))

    def test_distillation_family_robust_merge(self):
        exp = FedDFAT(
            _task(), {"cnn": _builder},
            _cfg(threat_plan=_plan(), aggregation_rule="median"),
        )
        exp.run()
        assert len(exp.history) == exp.config.rounds

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_fedprophet_robust_per_module_merges(self, mode):
        exp = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, threat_plan=_plan(),
                 aggregation_rule="median", aggregation_mode=mode),
        )
        exp.run()
        assert len(exp.history) == exp.config.rounds

    def test_fedprophet_backdoor_refuses_prefix_cache(self):
        with pytest.raises(ValueError, match="use_prefix_cache"):
            FedProphet(
                _task(), _builder,
                _cfg(FedProphetConfig, threat_plan=_plan("backdoor")),
            )
        exp = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, threat_plan=_plan("backdoor"),
                 use_prefix_cache=False),
        )
        exp.run()
        assert len(exp.history) == exp.config.rounds

    def test_fedprophet_threat_bit_identity_across_backends(self):
        cfg = dict(threat_plan=_plan("gaussian"), aggregation_rule="trimmed_mean")
        serial = FedProphet(_task(), _builder, _cfg(FedProphetConfig, **cfg))
        serial.run()
        threaded = FedProphet(
            _task(), _builder,
            _cfg(FedProphetConfig, executor_backend="thread",
                 round_parallelism=4, **cfg),
        )
        threaded.run()
        _assert_states_equal(_state(serial), _state(threaded))

    def test_capability_flag_gates_robust_rules(self):
        class NoRobust(JointFAT):
            supports_robust_aggregation = False

        with pytest.raises(ValueError, match="robust"):
            NoRobust(_task(), _builder, _cfg(aggregation_rule="median"))
        NoRobust(_task(), _builder, _cfg())  # fedavg still fine


class TestThreatsComposeWithEngine:
    def test_threats_compose_with_faults(self):
        exp = _run_jfat(
            _plan("label_flip"), "median",
            fault_plan=FaultPlan(seed=1, dropout_prob=0.3),
        )
        assert len(exp.history) == exp.config.rounds

    def test_threats_compose_with_resume(self, tmp_path):
        plan = _plan("sign_flip")
        journal_path = str(tmp_path / "run.jsonl")
        full = _run_jfat(plan, "median", rounds=4)
        partial = JointFAT(
            _task(), _builder,
            _cfg(rounds=4, threat_plan=plan, aggregation_rule="median",
                 journal_path=journal_path, checkpoint_every=1),
        )
        partial.run(rounds=2)  # dies after round 2; checkpoint at round 2
        partial.close()
        resumed = JointFAT(
            _task(), _builder,
            _cfg(rounds=4, threat_plan=plan, aggregation_rule="median",
                 journal_path=journal_path, checkpoint_every=1),
        )
        resumed.resume(journal_path)
        _assert_states_equal(_state(full), _state(resumed))
        resumed.close()
