"""Sharded evaluation engine: plans, shard determinism, cache reuse.

The load-bearing property mirrors the round engine's: an
:class:`EvalPlan` produces **bit-identical** :class:`EvalResult`s on the
serial, thread, and process backends — with and without the prefix cache,
and through the ``max_samples`` subsample path — because shard RNGs are
derived from ``(plan seed, attack, shard)`` and never from scheduling.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core import FedProphet, FedProphetConfig
from repro.data import ArrayDataset, make_cifar10_like
from repro.flsim import EvalExecutor, EvalTarget, FLConfig, RoundExecutor
from repro.attacks import ModelWithLoss
from repro.metrics import AttackSpec, EvalPlan, evaluate_model, shard_rng
from repro.models import build_cnn, build_vgg

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
BACKENDS = ["serial", "thread"] + (["process"] if HAS_FORK else [])


def _model(seed=1):
    return build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(seed))


def _dataset(n=40):
    rng = np.random.default_rng(2)
    y = rng.integers(0, 4, size=n)
    x = np.clip(0.5 + 0.2 * rng.normal(size=(n, 3, 8, 8)), 0, 1)
    return ArrayDataset(x, y)


def _replicated_targets():
    """A slot-aware target factory backed by per-slot model replicas."""
    state = _model().state_dict()
    replicas = {}

    def target_for_slot(slot):
        model = replicas.get(slot)
        if model is None:
            model = _model(seed=99)  # deliberately different init ...
            model.load_state_dict(state)  # ... erased by the sync
            replicas[slot] = model
        return EvalTarget(ModelWithLoss(model))

    return target_for_slot


def _results_equal(a, b):
    assert a.clean_acc == b.clean_acc
    assert a.pgd_acc == b.pgd_acc
    assert a.aa_acc == b.aa_acc
    assert a.attack_accs == b.attack_accs


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


class TestEvalPlan:
    def test_standard_triple(self):
        plan = EvalPlan.standard(eps=0.03, pgd_steps=5, with_autoattack=True)
        assert [a.name for a in plan.attacks] == ["clean", "pgd", "aa"]
        assert [a.kind for a in plan.attacks] == ["clean", "pgd", "autoattack"]

    def test_zero_eps_is_clean_only(self):
        plan = EvalPlan.standard(eps=0.0, pgd_steps=5, with_autoattack=True)
        assert [a.name for a in plan.attacks] == ["clean"]

    def test_autoattack_requires_pgd(self):
        # AA rides on the PGD column: no steps, no adversarial columns at all
        plan = EvalPlan.standard(eps=0.1, pgd_steps=0, with_autoattack=True)
        assert [a.name for a in plan.attacks] == ["clean"]

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            EvalPlan(attacks=())
        with pytest.raises(ValueError):
            EvalPlan(attacks=(AttackSpec.clean(), AttackSpec.clean()))

    def test_rejects_bad_attacks(self):
        with pytest.raises(ValueError):
            AttackSpec(name="x", kind="quantum")
        with pytest.raises(ValueError):
            AttackSpec(name="pgd", kind="pgd", eps=0.0, steps=5)

    def test_unmeasured_columns_stay_none(self):
        # a clean-less plan must not report a measured 0% clean accuracy
        plan = EvalPlan(attacks=(AttackSpec.pgd(0.05, 2),), batch_size=8)
        result = EvalExecutor().run(plan, _dataset(16), _replicated_targets())
        assert result.clean_acc is None
        assert result.aa_acc is None
        assert result.pgd_acc is not None
        assert set(result.attack_accs) == {"pgd"}

    def test_empty_evaluation_measures_nothing(self):
        plan = EvalPlan.standard(eps=0.05, pgd_steps=2, max_samples=0)
        result = EvalExecutor().run(plan, _dataset(8), _replicated_targets())
        assert result.clean_acc is None
        assert result.pgd_acc is None
        assert result.attack_accs == {"clean": None, "pgd": None}

    def test_shard_decomposition_is_backend_independent(self):
        plan = EvalPlan.standard(eps=0.1, pgd_steps=2, batch_size=8)
        shards = {
            backend: EvalExecutor(RoundExecutor(backend, max_workers=2)).shards_for(
                plan, 20
            )
            for backend in BACKENDS
        }
        reference = shards["serial"]
        assert len(reference) == 2 * 3  # two attacks x ceil(20 / 8) batches
        for backend in BACKENDS:
            assert shards[backend] == reference

    def test_shard_rng_stable(self):
        a = shard_rng(5, 1, 2).integers(0, 1000, 4)
        b = shard_rng(5, 1, 2).integers(0, 1000, 4)
        c = shard_rng(5, 1, 3).integers(0, 1000, 4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        # tuple seeds (used by cascade_eval's per-call counter) work too
        d = shard_rng((5, 7), 0, 0).integers(0, 1000, 4)
        assert d.shape == (4,)


# ---------------------------------------------------------------------------
# Backend determinism: serial == thread == process, bit for bit
# ---------------------------------------------------------------------------


class TestBackendDeterminism:
    @pytest.fixture(scope="class")
    def serial_result(self):
        plan = EvalPlan.standard(
            eps=0.05, pgd_steps=3, with_autoattack=True, batch_size=8, seed=3
        )
        executor = EvalExecutor(RoundExecutor("serial"))
        return plan, executor.run(plan, _dataset(), _replicated_targets())

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "serial"])
    def test_bit_identical_across_backends(self, backend, serial_result):
        plan, reference = serial_result
        executor = EvalExecutor(RoundExecutor(backend, max_workers=3))
        result = executor.run(plan, _dataset(), _replicated_targets())
        _results_equal(reference, result)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_samples_subsample_is_shard_stable(self, backend):
        plan = EvalPlan.standard(
            eps=0.05, pgd_steps=2, max_samples=16, batch_size=4, seed=11
        )
        reference = EvalExecutor(RoundExecutor("serial")).run(
            plan, _dataset(48), _replicated_targets()
        )
        result = EvalExecutor(RoundExecutor(backend, max_workers=2)).run(
            plan, _dataset(48), _replicated_targets()
        )
        _results_equal(reference, result)

    def test_worker_count_does_not_change_results(self):
        plan = EvalPlan.standard(eps=0.05, pgd_steps=2, batch_size=4, seed=7)
        results = [
            EvalExecutor(RoundExecutor("thread", max_workers=w)).run(
                plan, _dataset(), _replicated_targets()
            )
            for w in (1, 2, 5)
        ]
        for result in results[1:]:
            _results_equal(results[0], result)

    def test_evaluate_model_wrapper_matches_engine(self):
        model = _model()
        res = evaluate_model(
            model, _dataset(), eps=0.05, pgd_steps=2, batch_size=8, seed=13
        )
        plan = EvalPlan.standard(eps=0.05, pgd_steps=2, batch_size=8, seed=13)
        direct = EvalExecutor().run(
            plan, _dataset(), lambda slot: EvalTarget(ModelWithLoss(model))
        )
        _results_equal(res, direct)
        assert res.attack_accs == {"clean": res.clean_acc, "pgd": res.pgd_acc}


# ---------------------------------------------------------------------------
# Experiment-level evaluation: replicas, cascade_eval, cache reuse
# ---------------------------------------------------------------------------


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=10, seed=0)


def _prophet(eval_backend, use_cache=True, **overrides):
    defaults = dict(
        num_clients=3, clients_per_round=2, local_iters=2, batch_size=8,
        lr=0.02, rounds=4, train_pgd_steps=2, rounds_per_module=2,
        patience=5, val_samples=20, val_pgd_steps=2, eval_every=0,
        eval_pgd_steps=2, r_min_fraction=0.35, seed=0,
        use_prefix_cache=use_cache,
        eval_backend=eval_backend, eval_parallelism=2,
    )
    defaults.update(overrides)
    return FedProphet(
        _task(),
        lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
        FedProphetConfig(**defaults),
    )


class TestExperimentEvaluation:
    @pytest.fixture(scope="class")
    def serial_run(self):
        exp = _prophet("serial")
        history = exp.run()
        return exp, history

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "serial"])
    def test_full_run_eval_matches_serial(self, backend, serial_run):
        """Training serial everywhere; only evaluation changes backend."""
        ref, ref_history = serial_run
        exp = _prophet(backend)
        history = exp.run()
        assert len(history) == len(ref_history)
        for a, b in zip(ref_history, history):
            assert a.eval.clean_acc == b.eval.clean_acc
            assert a.eval.pgd_acc == b.eval.pgd_acc
        _results_equal(ref.evaluate(max_samples=16), exp.evaluate(max_samples=16))
        _results_equal(ref.final_eval(max_samples=16), exp.final_eval(max_samples=16))

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "serial"])
    def test_cascade_eval_cache_on_off_and_backends(self, backend, serial_run):
        """cascade_eval: cache off == cache on, serial == parallel."""
        ref, _ = serial_run
        exp_off = _prophet(backend, use_cache=False)
        exp_off.run()
        for h_ref, h in zip(ref.history, exp_off.history):
            assert h_ref.eval.clean_acc == h.eval.clean_acc
            assert h_ref.eval.pgd_acc == h.eval.pgd_acc

    def test_cascade_eval_fills_and_hits_prefix_cache(self):
        exp = _prophet("serial")
        exp.current_module = 1
        exp.eps_feature = 0.5
        exp._enter_stage(1)
        first = exp.cascade_eval(1)
        stats = exp.prefix_cache.stats()
        assert ("val", exp.partition[1][0]) in exp.prefix_cache._entries
        assert stats["misses"] == len(exp.val_set)
        second = exp.cascade_eval(1)
        stats = exp.prefix_cache.stats()
        # the second validation's clean pass is served entirely from cache
        assert stats["hits"] == len(exp.val_set)
        assert stats["misses"] == len(exp.val_set)
        assert first.clean_acc == second.clean_acc

    @pytest.mark.skipif(not HAS_FORK, reason="process backend requires fork()")
    def test_process_eval_merges_counters_and_entries(self):
        exp = _prophet("process")
        exp.current_module = 1
        exp.eps_feature = 0.5
        exp._enter_stage(1)
        exp.cascade_eval(1)
        stats = exp.prefix_cache.stats()
        # misses happened in forked children; the parent adopted both the
        # counter deltas and the filled entry
        assert stats["misses"] == len(exp.val_set)
        assert ("val", exp.partition[1][0]) in exp.prefix_cache._entries
        exp.cascade_eval(1)
        assert exp.prefix_cache.stats()["hits"] == len(exp.val_set)

    def test_module_zero_has_no_prefix_to_cache(self):
        exp = _prophet("serial")
        exp._enter_stage(0)
        exp.cascade_eval(0)
        assert len(exp.prefix_cache) == 0


class TestEvalConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FLConfig(eval_backend="gpu")
        with pytest.raises(ValueError):
            FLConfig(eval_parallelism=0)

    def test_eval_engine_follows_round_engine_by_default(self):
        from repro.baselines import JointFAT

        cfg = FLConfig(
            num_clients=2, clients_per_round=1, rounds=1,
            executor_backend="thread", round_parallelism=3,
        )
        exp = JointFAT(
            _task(), lambda rng: build_cnn(2, 10, (3, 8, 8), base_channels=4, rng=rng), cfg
        )
        assert exp.eval_executor.backend == "thread"
        assert exp.eval_executor.executor.max_workers == 3

    def test_eval_overrides_decouple(self):
        from repro.baselines import JointFAT

        cfg = FLConfig(
            num_clients=2, clients_per_round=1, rounds=1,
            executor_backend="serial", eval_backend="thread", eval_parallelism=2,
        )
        exp = JointFAT(
            _task(), lambda rng: build_cnn(2, 10, (3, 8, 8), base_channels=4, rng=rng), cfg
        )
        assert exp.executor.backend == "serial"
        assert exp.eval_executor.backend == "thread"
        assert exp.eval_executor.executor.max_workers == 2


# ---------------------------------------------------------------------------
# Split AutoAttack: per-member ensemble shards
# ---------------------------------------------------------------------------


class TestSplitAutoAttack:
    def _plan(self, **kw):
        defaults = dict(eps=0.01, pgd_steps=2, with_autoattack=True,
                        split_autoattack=True, batch_size=8, seed=3)
        defaults.update(kw)
        return EvalPlan.standard(**defaults)

    def test_members_decomposed(self):
        plan = self._plan()
        assert [a.name for a in plan.attacks] == [
            "clean", "pgd", "aa_fgsm", "aa_pgd", "aa_apgd"
        ]
        assert plan.ensembles() == {"aa": (2, 3, 4)}
        # three member shards per batch instead of one sequential AA sweep
        mono = EvalPlan.standard(eps=0.01, pgd_steps=2, with_autoattack=True,
                                 batch_size=8, seed=3)
        engine = EvalExecutor()
        assert len(engine.shards_for(plan, 16)) == 5 * 2
        assert len(engine.shards_for(mono, 16)) == 3 * 2

    def test_ensemble_name_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            EvalPlan(attacks=(
                AttackSpec.clean(name="aa"),
                *AttackSpec.autoattack_members(0.05, 2),
            ))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_across_backends(self, backend):
        plan = self._plan()
        reference = EvalExecutor(RoundExecutor("serial")).run(
            plan, _dataset(), _replicated_targets()
        )
        result = EvalExecutor(RoundExecutor(backend, max_workers=3)).run(
            plan, _dataset(), _replicated_targets()
        )
        _results_equal(reference, result)
        assert set(result.attack_accs) == {
            "clean", "pgd", "aa_fgsm", "aa_pgd", "aa_apgd", "aa"
        }

    def test_aa_column_is_worst_case_of_members(self):
        result = EvalExecutor().run(self._plan(), _dataset(), _replicated_targets())
        members = [result.attack_accs[k] for k in ("aa_fgsm", "aa_pgd", "aa_apgd")]
        assert result.aa_acc is not None
        assert result.aa_acc <= min(members) + 1e-12
        assert result.aa_acc == result.attack_accs["aa"]

    def test_aa_matches_manual_and_combination(self):
        """One shard per member: the aa column equals the AND of the masks."""
        ds = _dataset(24)
        plan = self._plan(batch_size=24)
        result = EvalExecutor().run(plan, ds, _replicated_targets())
        model = _model(seed=99)
        model.load_state_dict(_model().state_dict())
        model.eval()
        mwl = ModelWithLoss(model)
        y = np.asarray(ds.y)
        combined = np.ones(len(ds), dtype=bool)
        for ai, spec in enumerate(plan.attacks):
            if spec.ensemble != "aa":
                continue
            adv = spec.perturb(mwl, ds.x, y, shard_rng(plan.seed, ai, 0))
            combined &= mwl.logits(adv).argmax(axis=1) == y
        assert result.aa_acc == pytest.approx(combined.mean(), abs=1e-12)

    def test_submit_path_matches_run(self):
        """The scheduler submit path reduces to the same EvalResult."""
        from repro.flsim import FLScheduler

        plan = self._plan()
        engine = EvalExecutor(RoundExecutor("serial"))
        direct = engine.run(plan, _dataset(), _replicated_targets())
        for backend, workers in [("serial", 1), ("thread", 2)]:
            scheduler = FLScheduler(RoundExecutor(backend, max_workers=workers))
            pending = engine.submit(
                plan, _dataset(), _replicated_targets(), scheduler
            )
            _results_equal(direct, pending.result())
            assert pending.done()
