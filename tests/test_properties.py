"""Hypothesis property-based tests on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks.pgd import gradient_step, project, random_init
from repro.data.partition import dirichlet_partition, iid_partition, pathological_partition
from repro.flsim.aggregation import (
    AggregationError,
    masked_partial_average,
    weighted_average_states,
)
from repro.nn.functional import col2im, im2col, one_hot
from repro.nn.losses import log_softmax, softmax

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def logits_arrays(draw):
    n = draw(st.integers(1, 6))
    k = draw(st.integers(2, 8))
    return draw(arrays(np.float64, (n, k), elements=finite_floats))


@given(logits_arrays())
def test_softmax_is_distribution(logits):
    p = softmax(logits)
    assert np.all(p >= 0)
    np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)


@given(logits_arrays(), st.floats(min_value=-50, max_value=50))
def test_softmax_shift_invariant(logits, shift):
    np.testing.assert_allclose(softmax(logits), softmax(logits + shift), atol=1e-9)


@given(logits_arrays())
def test_log_softmax_never_positive(logits):
    assert np.all(log_softmax(logits) <= 1e-12)


@st.composite
def perturbations(draw):
    n = draw(st.integers(1, 4))
    d = draw(st.integers(1, 12))
    delta = draw(arrays(np.float64, (n, d), elements=finite_floats))
    eps = draw(st.floats(min_value=1e-3, max_value=10.0))
    return delta, eps


@given(perturbations())
def test_linf_projection_idempotent_and_feasible(args):
    delta, eps = args
    p = project(delta, eps, "linf")
    assert np.all(np.abs(p) <= eps + 1e-12)
    np.testing.assert_allclose(project(p, eps, "linf"), p, atol=1e-12)


@given(perturbations())
def test_l2_projection_idempotent_and_feasible(args):
    delta, eps = args
    p = project(delta, eps, "l2")
    norms = np.linalg.norm(p, axis=1)
    assert np.all(norms <= eps * (1 + 1e-9))
    np.testing.assert_allclose(project(p, eps, "l2"), p, atol=1e-9)


@given(perturbations())
def test_projection_is_contraction(args):
    """Projection never increases the norm."""
    delta, eps = args
    p2 = project(delta, eps, "l2")
    assert np.all(
        np.linalg.norm(p2, axis=1) <= np.linalg.norm(delta, axis=1) + 1e-9
    )


@given(st.integers(1, 5), st.integers(1, 16), st.floats(1e-3, 5.0), st.integers(0, 2**31 - 1))
def test_random_init_feasible(n, d, eps, seed):
    rng = np.random.default_rng(seed)
    for norm in ("linf", "l2"):
        delta = random_init((n, d), eps, norm, rng)
        if norm == "linf":
            assert np.all(np.abs(delta) <= eps + 1e-12)
        else:
            assert np.all(np.linalg.norm(delta, axis=1) <= eps * (1 + 1e-9))


@given(perturbations(), st.floats(min_value=1e-3, max_value=2.0))
def test_gradient_step_magnitude(args, alpha):
    grad, _ = args
    step_linf = gradient_step(grad, alpha, "linf")
    assert np.all(np.abs(step_linf) <= alpha + 1e-12)
    step_l2 = gradient_step(grad, alpha, "l2")
    assert np.all(np.linalg.norm(step_l2, axis=1) <= alpha * (1 + 1e-9))


@st.composite
def im2col_cases(draw):
    n = draw(st.integers(1, 2))
    c = draw(st.integers(1, 3))
    h = draw(st.integers(3, 8))
    k = draw(st.integers(1, 3))
    s = draw(st.integers(1, 2))
    p = draw(st.integers(0, 1))
    if h + 2 * p < k:
        p = k  # ensure valid output
    x = draw(
        arrays(np.float64, (n, c, h, h), elements=st.floats(-10, 10, allow_nan=False))
    )
    return x, k, s, p


@given(im2col_cases())
@settings(max_examples=40)
def test_im2col_col2im_adjoint_property(case):
    """<im2col(x), y> == <x, col2im(y)> for random shapes/strides/pads."""
    x, k, s, p = case
    cols, _, _ = im2col(x, k, k, s, p)
    rng = np.random.default_rng(0)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, k, k, s, p)).sum())
    assert abs(lhs - rhs) <= 1e-7 * max(1.0, abs(lhs))


@given(
    st.integers(2, 40).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(1, min(n, 8)))
    ),
    st.integers(0, 2**31 - 1),
)
def test_iid_partition_is_exact_cover(args, seed):
    n, clients = args
    labels = np.arange(n) % 3
    shards = iid_partition(labels, clients, rng=np.random.default_rng(seed))
    assert len(shards) == clients
    merged = np.sort(np.concatenate(shards))
    np.testing.assert_array_equal(merged, np.arange(n))


@given(st.integers(2, 8), st.integers(0, 2**31 - 1))
@settings(max_examples=25)
def test_pathological_partition_no_duplicates(clients, seed):
    labels = np.arange(200) % 10
    shards = pathological_partition(labels, clients, rng=np.random.default_rng(seed))
    merged = np.concatenate(shards)
    assert len(np.unique(merged)) == len(merged)


@given(st.floats(0.05, 5.0), st.integers(2, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=25)
def test_dirichlet_partition_exact_cover(alpha, clients, seed):
    labels = np.arange(120) % 4
    shards = dirichlet_partition(labels, clients, alpha, rng=np.random.default_rng(seed))
    merged = np.sort(np.concatenate(shards))
    np.testing.assert_array_equal(merged, np.arange(120))


@st.composite
def state_lists(draw):
    k = draw(st.integers(1, 4))
    shape = (draw(st.integers(1, 4)),)
    states = [
        {"w": draw(arrays(np.float64, shape, elements=finite_floats))} for _ in range(k)
    ]
    weights = [draw(st.floats(0.1, 10.0)) for _ in range(k)]
    return states, weights


@given(state_lists())
def test_weighted_average_within_convex_hull(args):
    states, weights = args
    out = weighted_average_states(states, weights)["w"]
    stacked = np.stack([s["w"] for s in states])
    assert np.all(out >= stacked.min(axis=0) - 1e-9)
    assert np.all(out <= stacked.max(axis=0) + 1e-9)


@given(state_lists())
def test_weighted_average_scale_invariant_in_weights(args):
    states, weights = args
    a = weighted_average_states(states, weights)["w"]
    b = weighted_average_states(states, [10.0 * w for w in weights])["w"]
    np.testing.assert_allclose(a, b, atol=1e-9)


@given(arrays(np.float64, (4,), elements=finite_floats))
def test_masked_partial_average_no_updates_raises_typed_error(g):
    # An empty cohort is no longer a silent identity: it raises the typed
    # AggregationError so the engine's abort path can refuse the round
    # (which leaves the global model untouched — identity, but explicit).
    with pytest.raises(AggregationError):
        masked_partial_average({"w": g}, [])


@given(st.lists(st.integers(0, 9), min_size=1, max_size=32))
def test_one_hot_rows(labels):
    oh = one_hot(np.asarray(labels), 10)
    np.testing.assert_allclose(oh.sum(axis=1), 1.0)
    assert np.all((oh == 0) | (oh == 1))
    np.testing.assert_array_equal(oh.argmax(axis=1), labels)
