"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

import numpy as np


def numerical_grad(f, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_input_grad(layer, x: np.ndarray, rtol=1e-4, atol=1e-6) -> None:
    """Verify layer.backward's input gradient against finite differences.

    Uses the scalar objective sum(w * out) with fixed random weights so the
    whole Jacobian is exercised.
    """
    rng = np.random.default_rng(0)
    out = layer.forward(x)
    w = rng.normal(size=out.shape)
    analytic = layer.backward(w)

    def objective():
        return float((w * layer.forward(x)).sum())

    numeric = numerical_grad(objective, x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_layer_param_grads(layer, x: np.ndarray, rtol=1e-4, atol=1e-6) -> None:
    """Verify accumulated parameter gradients against finite differences."""
    rng = np.random.default_rng(1)
    out = layer.forward(x)
    w = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.backward(w)

    def objective():
        return float((w * layer.forward(x)).sum())

    for name, p in layer.named_parameters():
        numeric = numerical_grad(objective, p.data)
        np.testing.assert_allclose(
            p.grad, numeric, rtol=rtol, atol=atol, err_msg=f"param {name}"
        )
