"""Tests for the Module/Parameter/Sequential base machinery."""

import numpy as np
import pytest

from repro.nn import Linear, ReLU, Sequential, Identity
from repro.nn.module import Module, Parameter


def test_parameter_grad_starts_zero():
    p = Parameter(np.ones((3, 2)))
    assert p.shape == (3, 2)
    assert p.size == 6
    np.testing.assert_array_equal(p.grad, np.zeros((3, 2)))


def test_parameter_zero_grad():
    p = Parameter(np.ones(4))
    p.grad += 3.0
    p.zero_grad()
    np.testing.assert_array_equal(p.grad, np.zeros(4))


def test_module_registers_parameters_and_children():
    rng = np.random.default_rng(0)
    model = Sequential(Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
    names = [n for n, _ in model.named_parameters()]
    assert names == [
        "layer0.weight",
        "layer0.bias",
        "layer2.weight",
        "layer2.bias",
    ]
    assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2


def test_train_eval_propagates():
    model = Sequential(Linear(2, 2), ReLU())
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_zero_grad_clears_all():
    model = Sequential(Linear(3, 3), Linear(3, 1))
    x = np.ones((2, 3))
    out = model(x)
    model.backward(np.ones_like(out))
    assert any(np.abs(p.grad).sum() > 0 for p in model.parameters())
    model.zero_grad()
    assert all(np.abs(p.grad).sum() == 0 for p in model.parameters())


def test_state_dict_roundtrip():
    rng = np.random.default_rng(1)
    m1 = Sequential(Linear(4, 3, rng=rng), Linear(3, 2, rng=rng))
    m2 = Sequential(
        Linear(4, 3, rng=np.random.default_rng(2)),
        Linear(3, 2, rng=np.random.default_rng(3)),
    )
    m2.load_state_dict(m1.state_dict())
    x = np.random.default_rng(4).normal(size=(5, 4))
    np.testing.assert_allclose(m1(x), m2(x))


def test_state_dict_returns_copies():
    m = Sequential(Linear(2, 2))
    state = m.state_dict()
    state["layer0.weight"][...] = 99.0
    assert not np.any(m.layers[0].weight.data == 99.0)


def test_load_state_dict_strict_missing_key():
    m = Sequential(Linear(2, 2))
    with pytest.raises(KeyError):
        m.load_state_dict({}, strict=True)
    m.load_state_dict({}, strict=False)  # no error


def test_identity_passthrough():
    layer = Identity()
    x = np.random.default_rng(0).normal(size=(2, 3))
    np.testing.assert_array_equal(layer(x), x)
    g = np.ones((2, 3))
    np.testing.assert_array_equal(layer.backward(g), g)


def test_sequential_indexing_and_slicing():
    layers = [Linear(2, 2), ReLU(), Linear(2, 1)]
    model = Sequential(*layers)
    assert len(model) == 3
    assert model[1] is layers[1]
    sliced = model[:2]
    assert isinstance(sliced, Sequential)
    assert len(sliced) == 2
    assert sliced[0] is layers[0]  # shared, not copied


def test_sequential_append():
    model = Sequential(Linear(2, 2))
    model.append(ReLU())
    assert len(model) == 2
    assert "layer1" in model._children


def test_buffer_registration_and_state():
    class WithBuffer(Module):
        def __init__(self):
            super().__init__()
            self.register_buffer("stat", np.zeros(3))

        def forward(self, x):
            return x

    m = WithBuffer()
    state = m.state_dict()
    assert "stat" in state
    m.load_state_dict({"stat": np.ones(3)})
    np.testing.assert_array_equal(m.stat, np.ones(3))


def test_set_buffer_unknown_name_raises():
    class WithBuffer(Module):
        def __init__(self):
            super().__init__()
            self.register_buffer("stat", np.zeros(3))

        def forward(self, x):
            return x

    with pytest.raises(KeyError):
        WithBuffer().set_buffer("nope", np.ones(3))
