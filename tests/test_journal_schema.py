"""Journal schema guards: the closed kind set and the on-disk format.

``tests/data/golden_journal.jsonl`` is a checked-in journal containing
one event of **every** kind in :data:`~repro.flsim.journal.KNOWN_KINDS`,
written by the real writer.  It pins the on-disk format: if the writer's
serialisation or the kind set drifts, these tests fail before any stored
journal in the wild stops replaying.
"""

import json
import os

import pytest

from repro.flsim import JournalError, RunJournal
from repro.flsim.journal import KNOWN_KINDS
from repro.flsim.replay import canonical_events

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "golden_journal.jsonl")


class TestKnownKinds:
    def test_writer_refuses_unknown_kind(self, tmp_path):
        j = RunJournal.create(str(tmp_path / "run.jsonl"))
        with pytest.raises(ValueError, match="unknown journal event kind 'telemetry'"):
            j.append("telemetry", round=0)
        j.close()

    def test_reader_refuses_unknown_kind_naming_the_line(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"seq": 0, "kind": "run_start"}) + "\n")
            fh.write(json.dumps({"seq": 1, "kind": "telemetry"}) + "\n")
            fh.write(json.dumps({"seq": 2, "kind": "run_end"}) + "\n")
        with pytest.raises(JournalError, match=r"line 2 \(seq 1\).*'telemetry'"):
            RunJournal.read(path)

    def test_reader_refuses_seq_gap_naming_the_line(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"seq": 0, "kind": "run_start"}) + "\n")
            fh.write(json.dumps({"seq": 2, "kind": "round"}) + "\n")
            fh.write(json.dumps({"seq": 3, "kind": "run_end"}) + "\n")
        with pytest.raises(JournalError, match="line 2 has seq 2, expected 1"):
            RunJournal.read(path)

    def test_reader_refuses_seq_repeat(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"seq": 0, "kind": "run_start"}) + "\n")
            fh.write(json.dumps({"seq": 0, "kind": "round"}) + "\n")
        with pytest.raises(JournalError, match="line 2 has seq 0, expected 1"):
            RunJournal.read(path)

    def test_every_kind_round_trips_writer_to_reader(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        j = RunJournal.create(path)
        kinds = sorted(KNOWN_KINDS)
        for i, kind in enumerate(kinds):
            j.append(kind, probe=i)
        j.close()
        events = RunJournal.read(path)
        assert [e["kind"] for e in events] == kinds
        assert [e["seq"] for e in events] == list(range(len(kinds)))
        assert [e["probe"] for e in events] == list(range(len(kinds)))


class TestGoldenJournal:
    def test_covers_every_known_kind(self):
        events = RunJournal.read(GOLDEN)
        assert {e["kind"] for e in events} == set(KNOWN_KINDS)

    def test_on_disk_format_is_pinned(self):
        """Re-serialising each event reproduces the file byte-for-byte.

        This is the format guard: key order, separators, float repr, and
        the trailing newline are all part of the on-disk contract (the
        replay verifier compares at this level).
        """
        events = RunJournal.read(GOLDEN)
        reserialised = "".join(json.dumps(e) + "\n" for e in events)
        with open(GOLDEN, encoding="utf-8") as fh:
            assert fh.read() == reserialised

    def test_writer_reproduces_the_golden_bytes(self, tmp_path):
        path = str(tmp_path / "rewrite.jsonl")
        events = RunJournal.read(GOLDEN)
        j = RunJournal.create(path)
        for e in events:
            j.append(e["kind"], **{k: v for k, v in e.items() if k not in ("seq", "kind")})
        j.close()
        with open(GOLDEN, encoding="utf-8") as a, open(path, encoding="utf-8") as b:
            assert a.read() == b.read()

    def test_golden_lifecycle_canonicalises(self):
        """The golden journal is a plausible crashed-and-resumed run: the
        replay canonicaliser folds its resume and recovers the abort."""
        canonical, folds = canonical_events(RunJournal.read(GOLDEN), GOLDEN)
        assert folds == 1
        assert canonical[0]["kind"] == "run_start"
        assert canonical[-1]["kind"] == "run_end"
        assert all(e["kind"] != "run_abort" for e in canonical)

    def test_resume_open_continues_the_seq(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(GOLDEN, encoding="utf-8") as src, open(path, "w", encoding="utf-8") as dst:
            dst.write(src.read())
        n = len(RunJournal.read(path))
        j = RunJournal.resume_open(path)
        j.append("resume", next_round=1)
        j.close()
        events = RunJournal.read(path)
        assert events[-1] == {"seq": n, "kind": "resume", "next_round": 1}
