"""Shared pytest configuration for the unit-test suite."""

import warnings

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _deterministic_warnings():
    """Overflow in the extreme-logit stability tests is expected; everything
    else should surface."""
    with warnings.catch_warnings():
        warnings.filterwarnings(
            "ignore", message="overflow encountered in subtract", category=RuntimeWarning
        )
        yield
