"""Attacks on intermediate features — the path FedProphet training uses."""

import numpy as np
import pytest

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.attacks.autoattack import _checkpoints
from repro.core.cascade import CascadeLossModel
from repro.core.heads import AuxHead
from repro.models import build_cnn

RNG = np.random.default_rng(0)


def _setup():
    model = build_cnn(3, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))
    model.eval()
    seg = model.segment(1, 2)
    head = AuxHead(model.feature_shape(1), 4, rng=np.random.default_rng(2))
    clm = CascadeLossModel(seg, head, mu=1e-3)
    x = RNG.uniform(0.2, 0.8, size=(8, 3, 8, 8))
    y = RNG.integers(0, 4, size=8)
    z = model.forward_until(x, 1)
    return model, clm, z, y


class TestFeatureSpacePGD:
    def test_l2_ball_respected_on_features(self):
        _, clm, z, y = _setup()
        cfg = PGDConfig(eps=0.5, steps=4, norm="l2", clip=None)
        z_adv = pgd_attack(clm, z, y, cfg, rng=RNG)
        norms = np.linalg.norm((z_adv - z).reshape(len(z), -1), axis=1)
        assert np.all(norms <= 0.5 + 1e-9)

    def test_attack_increases_regularized_loss(self):
        _, clm, z, y = _setup()
        base = clm.loss(z, y)
        cfg = PGDConfig(eps=1.0, steps=6, norm="l2", clip=None)
        z_adv = pgd_attack(clm, z, y, cfg, rng=RNG)
        assert clm.loss(z_adv, y) > base

    def test_no_clipping_applied_to_features(self):
        """Intermediate features are unbounded — clip must stay disabled."""
        _, clm, z, y = _setup()
        cfg = PGDConfig(eps=5.0, steps=3, norm="l2", clip=None)
        z_adv = pgd_attack(clm, z, y, cfg, rng=RNG)
        # with a large eps the attack may push features outside [0, 1]
        assert np.isfinite(z_adv).all()

    def test_mu_contributes_to_attack_gradient(self):
        model, _, z, y = _setup()
        seg = model.segment(1, 2)
        head = AuxHead(model.feature_shape(1), 4, rng=np.random.default_rng(2))
        no_reg = CascadeLossModel(seg, head, mu=0.0)
        with_reg = CascadeLossModel(seg, head, mu=10.0)
        _, g0 = no_reg.loss_and_input_grad(z, y)
        _, g1 = with_reg.loss_and_input_grad(z, y)
        assert not np.allclose(g0, g1)


class TestModelWithLossHeads:
    def test_aux_head_composition(self):
        model = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(3))
        model.eval()
        chain = model.segment(0, 1)
        head = AuxHead(model.feature_shape(0), 4, rng=np.random.default_rng(4))
        mwl = ModelWithLoss(chain, head=head)
        x = RNG.uniform(size=(4, 3, 8, 8))
        y = np.array([0, 1, 2, 3])
        logits = mwl.logits(x)
        assert logits.shape == (4, 4)
        loss, grad = mwl.loss_and_input_grad(x, y)
        assert np.isfinite(loss)
        assert grad.shape == x.shape

    def test_pgd_through_aux_head(self):
        model = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(3))
        model.eval()
        chain = model.segment(0, 2)
        head = AuxHead(model.feature_shape(1), 4, rng=np.random.default_rng(4))
        mwl = ModelWithLoss(chain, head=head)
        x = RNG.uniform(0.3, 0.7, size=(6, 3, 8, 8))
        y = RNG.integers(0, 4, size=6)
        adv = pgd_attack(mwl, x, y, PGDConfig(eps=0.05, steps=3), rng=RNG)
        assert np.all(np.abs(adv - x) <= 0.05 + 1e-12)


class TestAPGDCheckpoints:
    def test_schedule_monotone_and_bounded(self):
        for steps in (5, 20, 100):
            pts = _checkpoints(steps)
            assert pts == sorted(pts)
            assert all(0 <= p < steps for p in pts)

    def test_small_step_counts(self):
        assert _checkpoints(1) == [0]
