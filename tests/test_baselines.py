"""Smoke + behaviour tests for all seven baseline algorithms."""

import numpy as np
import pytest

from repro.baselines import (
    FedDFAT,
    FedDropAT,
    FedETAT,
    FedRBN,
    FedRolexAT,
    HeteroFLAT,
    JointFAT,
)
from repro.baselines.distill import (
    distill,
    ensemble_soft_targets,
    soft_cross_entropy,
    soft_cross_entropy_grad,
)
from repro.data import make_cifar10_like
from repro.flsim import FLConfig
from repro.hardware import DEVICE_POOL_CIFAR10, DeviceSampler
from repro.models import build_cnn, build_vgg
from repro.nn import DualBatchNorm2d
from repro.nn.normalization import set_dual_bn_mode

SHAPE = (3, 8, 8)


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=8, seed=0)


def _cfg(**overrides):
    defaults = dict(
        num_clients=6, clients_per_round=3, local_iters=2, batch_size=8,
        lr=0.02, rounds=2, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, eval_max_samples=30, seed=0,
    )
    defaults.update(overrides)
    return FLConfig(**defaults)


def _builder(rng):
    return build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng)


def _dual_builder(rng):
    return build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng, bn_cls=DualBatchNorm2d)


def _families():
    return {
        "cnn2": lambda rng: build_cnn(2, 10, SHAPE, base_channels=4, rng=rng),
        "vgg11": _builder,
    }


SAMPLER = DeviceSampler(DEVICE_POOL_CIFAR10, "balanced")


class TestDistillation:
    def test_soft_ce_matches_hard_ce_on_onehot(self):
        from repro.nn import CrossEntropyLoss
        from repro.nn.functional import one_hot

        logits = np.random.default_rng(0).normal(size=(4, 5))
        y = np.array([0, 2, 4, 1])
        assert soft_cross_entropy(logits, one_hot(y, 5)) == pytest.approx(
            CrossEntropyLoss()(logits, y)
        )

    def test_soft_ce_grad_numeric(self):
        from tests.helpers import numerical_grad

        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        targets = np.abs(rng.normal(size=(3, 4)))
        targets /= targets.sum(axis=1, keepdims=True)
        analytic = soft_cross_entropy_grad(logits, targets)
        numeric = numerical_grad(lambda: soft_cross_entropy(logits, targets), logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_ensemble_targets_are_distributions(self):
        rng = np.random.default_rng(2)
        teachers = [build_cnn(1, 5, SHAPE, base_channels=4, rng=rng) for _ in range(3)]
        x = rng.uniform(size=(4,) + SHAPE)
        for cw in (False, True):
            t = ensemble_soft_targets(teachers, x, confidence_weighted=cw)
            np.testing.assert_allclose(t.sum(axis=1), np.ones(4))
            assert np.all(t >= 0)

    def test_distill_moves_student_toward_teacher(self):
        rng = np.random.default_rng(3)
        teacher = build_cnn(1, 5, SHAPE, base_channels=4, rng=rng)
        student = build_cnn(1, 5, SHAPE, base_channels=4, rng=np.random.default_rng(4))
        task = _task()
        public = task.train.subset(np.arange(40))
        before = distill(student, [teacher], public, iterations=1, batch_size=16, lr=0.1)
        after = distill(student, [teacher], public, iterations=20, batch_size=16, lr=0.1)
        assert after < before


def _run(exp):
    exp.run()
    res = exp.evaluate(max_samples=20)
    assert 0.0 <= res.clean_acc <= 1.0
    assert 0.0 <= res.pgd_acc <= 1.0
    return res


class TestJointFAT:
    def test_runs_and_updates_global(self):
        exp = JointFAT(_task(), _builder, _cfg(), device_sampler=SAMPLER)
        before = exp.global_model.state_dict()
        _run(exp)
        after = exp.global_model.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_swapping_incurred_when_memory_short(self):
        exp = JointFAT(_task(), _builder, _cfg(), device_sampler=SAMPLER)
        exp.run()
        # VGG11 at this scale still exceeds 20%-degraded device memory
        # occasionally; total access time accumulates only via swapping.
        assert exp.clock_s > 0


@pytest.mark.parametrize("cls", [HeteroFLAT, FedDropAT, FedRolexAT])
class TestPartialTraining:
    def test_runs(self, cls):
        exp = cls(_task(), _builder, _cfg(), device_sampler=SAMPLER)
        _run(exp)

    def test_client_ratio_clipped(self, cls):
        exp = cls(_task(), _builder, _cfg(), device_sampler=SAMPLER)
        state = SAMPLER.sample(np.random.default_rng(0))
        r = exp.client_ratio(state)
        assert exp.min_ratio <= r <= 1.0
        assert exp.client_ratio(None) == 1.0


class TestKnowledgeDistillation:
    def test_feddf_runs(self):
        exp = FedDFAT(
            _task(), _families(), _cfg(), device_sampler=SAMPLER, distill_iters=2
        )
        _run(exp)

    def test_fedet_runs(self):
        exp = FedETAT(
            _task(), _families(), _cfg(), device_sampler=SAMPLER, distill_iters=2
        )
        _run(exp)

    def test_architecture_pick_respects_memory(self):
        exp = FedDFAT(
            _task(), _families(), _cfg(), device_sampler=SAMPLER, distill_iters=2
        )
        # a state with tiny memory must pick the smallest family member
        from repro.hardware.devices import Device, DeviceState

        poor = DeviceState(Device("p", 1.0, 1, 1), avail_mem_bytes=1.0, avail_perf_flops=1e9)
        assert exp.pick_architecture(poor) == "cnn2"
        assert exp.pick_architecture(None) == "vgg11"

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            FedDFAT(_task(), {}, _cfg())


class TestFedRBN:
    def test_requires_dual_bn(self):
        with pytest.raises(ValueError):
            FedRBN(_task(), _builder, _cfg())

    def test_runs_with_dual_bn(self):
        exp = FedRBN(_task(), _dual_builder, _cfg(), device_sampler=SAMPLER)
        _run(exp)

    def test_adv_stats_differ_from_clean_after_training(self):
        exp = FedRBN(_task(), _dual_builder, _cfg(rounds=2))
        exp.run()  # no device sampler -> every client affords AT
        model = exp.global_model
        diffs = []
        for name, buf in model.named_buffers():
            if name.endswith("running_mean_adv"):
                clean = dict(model.named_buffers())[name.replace("_adv", "")]
                diffs.append(np.abs(buf - clean).sum())
        assert sum(diffs) > 0

    def test_mode_switch(self):
        model = _dual_builder(np.random.default_rng(0))
        set_dual_bn_mode(model, True)
        assert all(
            m.adversarial_mode for m in model.modules() if isinstance(m, DualBatchNorm2d)
        )
        set_dual_bn_mode(model, False)
        assert all(
            not m.adversarial_mode for m in model.modules() if isinstance(m, DualBatchNorm2d)
        )
