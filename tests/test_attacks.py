"""Tests for FGSM / PGD / APGD / the AutoAttack-lite ensemble."""

import numpy as np
import pytest

from repro.attacks import (
    ModelWithLoss,
    PGDConfig,
    apgd_attack,
    auto_attack_lite,
    fgsm_attack,
    pgd_attack,
)
from repro.attacks.pgd import gradient_step, project, random_init
from repro.nn import Linear, ReLU, Sequential

RNG = np.random.default_rng(3)


def _toy_model(in_dim=8, classes=3):
    rng = np.random.default_rng(11)
    return Sequential(Linear(in_dim, 16, rng=rng), ReLU(), Linear(16, classes, rng=rng))


def _data(n=6, in_dim=8, classes=3):
    x = np.clip(RNG.uniform(0.2, 0.8, size=(n, in_dim)), 0, 1)
    y = RNG.integers(0, classes, size=n)
    return x, y


class TestPGDPrimitives:
    def test_project_linf(self):
        d = np.array([[0.5, -0.5, 0.05]])
        np.testing.assert_allclose(project(d, 0.1, "linf"), [[0.1, -0.1, 0.05]])

    def test_project_l2_shrinks_to_ball(self):
        d = RNG.normal(size=(4, 10))
        p = project(d, 0.5, "l2")
        norms = np.linalg.norm(p.reshape(4, -1), axis=1)
        assert np.all(norms <= 0.5 + 1e-9)

    def test_project_l2_keeps_interior_points(self):
        d = np.full((1, 4), 0.01)
        np.testing.assert_allclose(project(d, 1.0, "l2"), d)

    def test_random_init_within_ball(self):
        for norm in ("linf", "l2"):
            d = random_init((16, 5), 0.3, norm, RNG)
            if norm == "linf":
                assert np.all(np.abs(d) <= 0.3 + 1e-12)
            else:
                assert np.all(np.linalg.norm(d, axis=1) <= 0.3 + 1e-9)

    def test_gradient_step_linf_is_sign(self):
        g = np.array([[2.0, -3.0, 0.0]])
        np.testing.assert_allclose(gradient_step(g, 0.1, "linf"), [[0.1, -0.1, 0.0]])

    def test_gradient_step_l2_is_normalised(self):
        g = RNG.normal(size=(2, 6))
        step = gradient_step(g, 0.5, "l2")
        np.testing.assert_allclose(np.linalg.norm(step, axis=1), [0.5, 0.5])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PGDConfig(eps=-1, steps=5)
        with pytest.raises(ValueError):
            PGDConfig(eps=0.1, steps=0)
        with pytest.raises(ValueError):
            PGDConfig(eps=0.1, steps=5, norm="l1")

    def test_default_step_size(self):
        cfg = PGDConfig(eps=0.1, steps=10)
        assert cfg.alpha == pytest.approx(2.5 * 0.1 / 10)


class TestPGDAttack:
    def test_linf_constraint_respected(self):
        model = _toy_model()
        x, y = _data()
        mwl = ModelWithLoss(model)
        adv = pgd_attack(mwl, x, y, PGDConfig(eps=0.05, steps=5, clip=(0, 1)), rng=RNG)
        assert np.all(np.abs(adv - x) <= 0.05 + 1e-12)
        assert np.all(adv >= 0) and np.all(adv <= 1)

    def test_l2_constraint_respected(self):
        model = _toy_model()
        x, y = _data()
        mwl = ModelWithLoss(model)
        adv = pgd_attack(
            mwl, x, y, PGDConfig(eps=0.3, steps=5, norm="l2", clip=None), rng=RNG
        )
        norms = np.linalg.norm((adv - x).reshape(len(x), -1), axis=1)
        assert np.all(norms <= 0.3 + 1e-9)

    def test_increases_loss(self):
        model = _toy_model()
        x, y = _data(n=32)
        mwl = ModelWithLoss(model)
        base, _ = mwl.loss_and_input_grad(x, y)
        adv = pgd_attack(mwl, x, y, PGDConfig(eps=0.2, steps=10), rng=RNG)
        attacked, _ = mwl.loss_and_input_grad(adv, y)
        assert attacked > base

    def test_zero_eps_returns_copy(self):
        model = _toy_model()
        x, y = _data()
        adv = pgd_attack(ModelWithLoss(model), x, y, PGDConfig(eps=0.0, steps=3))
        np.testing.assert_array_equal(adv, x)
        assert adv is not x

    def test_more_steps_not_weaker(self):
        model = _toy_model()
        x, y = _data(n=64)
        mwl = ModelWithLoss(model)
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        weak = pgd_attack(mwl, x, y, PGDConfig(eps=0.2, steps=1, rand_init=False), rng=rng1)
        strong = pgd_attack(mwl, x, y, PGDConfig(eps=0.2, steps=20, rand_init=False), rng=rng2)
        lw, _ = mwl.loss_and_input_grad(weak, y)
        ls, _ = mwl.loss_and_input_grad(strong, y)
        assert ls >= lw - 1e-6


class TestFGSM:
    def test_constraint(self):
        model = _toy_model()
        x, y = _data()
        adv = fgsm_attack(ModelWithLoss(model), x, y, eps=0.1)
        assert np.all(np.abs(adv - x) <= 0.1 + 1e-12)

    def test_negative_eps_rejected(self):
        model = _toy_model()
        x, y = _data()
        with pytest.raises(ValueError):
            fgsm_attack(ModelWithLoss(model), x, y, eps=-0.1)


class TestAPGD:
    def test_constraint_and_strength(self):
        model = _toy_model()
        x, y = _data(n=32)
        mwl = ModelWithLoss(model)
        adv = apgd_attack(mwl, x, y, eps=0.15, steps=15, rng=RNG)
        assert np.all(np.abs(adv - x) <= 0.15 + 1e-9)
        base = mwl.per_sample_losses(x, y)
        attacked = mwl.per_sample_losses(adv, y)
        # APGD keeps the per-sample best iterate: never worse than clean.
        assert np.all(attacked >= base - 1e-9)

    def test_zero_steps_noop(self):
        model = _toy_model()
        x, y = _data()
        adv = apgd_attack(ModelWithLoss(model), x, y, eps=0.1, steps=0)
        np.testing.assert_array_equal(adv, x)


class TestAutoAttackLite:
    def test_no_weaker_than_pgd(self):
        model = _toy_model()
        x, y = _data(n=48)
        mwl = ModelWithLoss(model)
        pgd_adv = pgd_attack(
            mwl, x, y, PGDConfig(eps=0.2, steps=10), rng=np.random.default_rng(0)
        )
        aa_adv = auto_attack_lite(
            mwl, x, y, eps=0.2, steps=10, rng=np.random.default_rng(0)
        )
        pgd_acc = float((mwl.logits(pgd_adv).argmax(1) == y).mean())
        aa_acc = float((mwl.logits(aa_adv).argmax(1) == y).mean())
        assert aa_acc <= pgd_acc + 1e-9

    def test_constraint(self):
        model = _toy_model()
        x, y = _data()
        adv = auto_attack_lite(ModelWithLoss(model), x, y, eps=0.1, steps=5, rng=RNG)
        assert np.all(np.abs(adv - x) <= 0.1 + 1e-9)
        assert np.all(adv >= 0) and np.all(adv <= 1)


class TestModelWithLoss:
    def test_head_composition(self):
        rng = np.random.default_rng(5)
        body = Sequential(Linear(6, 4, rng=rng), ReLU())
        head = Linear(4, 3, rng=rng)
        mwl = ModelWithLoss(body, head=head)
        x = RNG.normal(size=(2, 6))
        np.testing.assert_allclose(mwl.logits(x), head(body(x)))

    def test_per_sample_losses_match_mean_loss(self):
        model = _toy_model()
        x, y = _data(n=10)
        mwl = ModelWithLoss(model)
        mean_loss, _ = mwl.loss_and_input_grad(x, y)
        per_sample = mwl.per_sample_losses(x, y)
        assert mean_loss == pytest.approx(float(per_sample.mean()))
