"""Additional cascade-learning behaviours: BN mode discipline, prefix
freezing, and strong-convexity regularizer effects on training."""

import numpy as np
import pytest

from repro.core.cascade import CascadeBatchSpec, CascadeLossModel, cascade_local_train
from repro.core.heads import AuxHead
from repro.data import ArrayDataset
from repro.models import build_cnn
from repro.nn import BatchNorm2d

RNG = np.random.default_rng(0)


def _model():
    return build_cnn(3, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))


def _dataset(n=24):
    rng = np.random.default_rng(2)
    y = rng.integers(0, 4, size=n)
    x = np.clip(0.5 + 0.2 * rng.normal(size=(n, 3, 8, 8)), 0, 1)
    return ArrayDataset(x, y)


class TestModeDiscipline:
    def test_prefix_bn_stats_frozen_during_module_training(self):
        """Training module 2 must not move module 1's BN running stats —
        the prefix is fixed (w*_1) during the stage."""
        model = _model()
        prefix_bns = [
            m for m in model.atoms[0].module.modules() if isinstance(m, BatchNorm2d)
        ]
        before = [bn.running_mean.copy() for bn in prefix_bns]
        head = AuxHead(model.feature_shape(1), 4, rng=RNG)
        spec = CascadeBatchSpec(start_atom=1, stop_atom=2, head=head)
        cascade_local_train(
            model, spec, _dataset(), iterations=3, batch_size=8, lr=0.05,
            mu=1e-5, eps0=0.02, eps_feature=0.3, attack_steps=1,
        )
        for bn, old in zip(prefix_bns, before):
            np.testing.assert_array_equal(bn.running_mean, old)

    def test_trained_segment_bn_stats_update(self):
        model = _model()
        seg_bns = [
            m for m in model.atoms[1].module.modules() if isinstance(m, BatchNorm2d)
        ]
        before = [bn.running_mean.copy() for bn in seg_bns]
        head = AuxHead(model.feature_shape(1), 4, rng=RNG)
        spec = CascadeBatchSpec(start_atom=1, stop_atom=2, head=head)
        cascade_local_train(
            model, spec, _dataset(), iterations=3, batch_size=8, lr=0.05,
            mu=1e-5, eps0=0.02, eps_feature=0.3, attack_steps=1,
        )
        moved = any(
            not np.allclose(bn.running_mean, old) for bn, old in zip(seg_bns, before)
        )
        assert moved

    def test_model_left_in_eval_after_training(self):
        model = _model()
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        spec = CascadeBatchSpec(start_atom=0, stop_atom=1, head=head)
        cascade_local_train(
            model, spec, _dataset(), iterations=1, batch_size=8, lr=0.05,
            mu=0.0, eps0=0.02, eps_feature=0.0, attack_steps=1,
        )
        assert all(not m.training for m in model.modules())


class TestRegularizerEffect:
    def test_mu_shrinks_feature_norms_over_training(self):
        """With a large μ the ℓ2 regularizer visibly shrinks the module's
        output features relative to μ=0 — Lemma 1's mechanism."""

        def train_and_norm(mu):
            model = _model()
            head = AuxHead(model.feature_shape(0), 4, rng=np.random.default_rng(5))
            spec = CascadeBatchSpec(start_atom=0, stop_atom=1, head=head)
            ds = _dataset()
            for i in range(6):
                cascade_local_train(
                    model, spec, ds, iterations=10, batch_size=16, lr=0.1,
                    mu=mu, eps0=0.02, eps_feature=0.0, attack_steps=1,
                    rng=np.random.default_rng(i),
                )
            model.eval()
            z = model.atoms[0].module(ds.x)
            return float(np.linalg.norm(z.reshape(len(ds.x), -1), axis=1).mean())

        assert train_and_norm(mu=1.0) < train_and_norm(mu=0.0)

    def test_loss_reports_include_regularizer(self):
        model = _model()
        model.eval()
        seg = model.segment(0, 1)
        head = AuxHead(model.feature_shape(0), 4, rng=RNG)
        x = RNG.uniform(size=(4, 3, 8, 8))
        y = np.array([0, 1, 2, 3])
        l0 = CascadeLossModel(seg, head, mu=0.0).loss(x, y)
        l1 = CascadeLossModel(seg, head, mu=1.0).loss(x, y)
        assert l1 > l0
