"""Cross-module integration tests: the pieces working together.

These exercise the same code paths as the benchmark harness, at an even
smaller scale, so CI catches wiring regressions without multi-minute runs.
"""

import numpy as np
import pytest

from repro.baselines import FedRolexAT, JointFAT
from repro.core import FedProphet, FedProphetConfig
from repro.core.heads import AuxHead
from repro.core.cascade import CascadeBatchSpec, CascadeLossModel, cascade_local_train
from repro.data import make_cifar10_like
from repro.flsim import FLConfig
from repro.hardware import (
    DEVICE_POOL_CIFAR10,
    Device,
    DeviceSampler,
    mem_req_bytes,
)
from repro.models import build_vgg


SHAPE = (3, 8, 8)


def _task():
    return make_cifar10_like(image_size=8, train_per_class=60, test_per_class=20, seed=0)


def _builder(rng):
    return build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng)


class TestCascadeLearnsCentrally:
    """Multi-atom cascade modules must be learnable via their aux heads —
    the property the whole FedProphet pipeline rests on."""

    def test_first_span_beats_chance(self):
        task = _task()
        model = _builder(np.random.default_rng(0))
        head = AuxHead(model.feature_shape(2), 10, rng=np.random.default_rng(1))
        spec = CascadeBatchSpec(0, 3, head)
        for ep in range(6):
            cascade_local_train(
                model, spec, task.train, iterations=30, batch_size=32,
                lr=0.08, mu=1e-5, eps0=8 / 255, eps_feature=0.0, attack_steps=2,
                rng=np.random.default_rng(ep),
            )
        model.eval()
        clm = CascadeLossModel(model.segment(0, 3), head, 0.0)
        acc = float((clm.logits(task.test.x).argmax(1) == task.test.y).mean())
        assert acc > 0.3, f"cascade module only reached {acc:.2f}"


class TestScaledDevicePressure:
    """jFAT must experience memory pressure (swap) on a pool whose memory
    is matched to the workload's footprint — the Fig. 2/7 regime."""

    def _scaled_pool(self):
        model = _builder(np.random.default_rng(0))
        r_max = mem_req_bytes(model, SHAPE, 32)
        # devices whose peak memory brackets the requirement
        return [
            Device("tiny", 1e-3, r_max / 1024**3 * 1.0, 0.01),
            Device("big", 1e-3, r_max / 1024**3 * 20.0, 0.01),
        ]

    def test_jfat_swaps_fedprophet_does_not(self):
        task = _task()
        sampler = DeviceSampler(self._scaled_pool(), "balanced")
        cfg = FLConfig(
            num_clients=6, clients_per_round=3, local_iters=1, batch_size=16,
            rounds=3, train_pgd_steps=1, eval_every=0, seed=0,
        )
        jfat = JointFAT(task, _builder, cfg, device_sampler=sampler)
        jfat.run()
        assert jfat.total_access_s > 0, "jFAT should swap on tiny devices"

        pcfg = FedProphetConfig(
            num_clients=6, clients_per_round=3, local_iters=1, batch_size=16,
            rounds=3, rounds_per_module=1, patience=2, train_pgd_steps=1,
            eval_every=0, r_min_fraction=0.1, val_samples=16, val_pgd_steps=1,
            seed=0,
        )
        fed = FedProphet(task, _builder, pcfg, device_sampler=sampler)
        fed.run()
        # FedProphet's modules fit within the same budget far more often.
        assert fed.total_access_s <= jfat.total_access_s


class TestEndToEndComparability:
    """All methods produce comparable state on the same workload."""

    def test_same_global_architecture(self):
        task = _task()
        cfg = FLConfig(
            num_clients=4, clients_per_round=2, local_iters=1, batch_size=8,
            rounds=1, train_pgd_steps=1, eval_every=0, seed=0,
        )
        jfat = JointFAT(task, _builder, cfg)
        rolex = FedRolexAT(task, _builder, cfg)
        assert jfat.global_model.state_dict().keys() == rolex.global_model.state_dict().keys()

    def test_rounds_produce_finite_weights(self):
        task = _task()
        cfg = FLConfig(
            num_clients=4, clients_per_round=2, local_iters=2, batch_size=8,
            rounds=2, train_pgd_steps=1, eval_every=0, seed=0,
        )
        exp = FedRolexAT(task, _builder, cfg,
                         device_sampler=DeviceSampler(DEVICE_POOL_CIFAR10, "unbalanced"))
        exp.run()
        for key, value in exp.global_model.state_dict().items():
            assert np.isfinite(value).all(), f"non-finite weights in {key}"


class TestProphetMemoryGuarantee:
    """Every multi-atom module of the partition fits in R_min — the memory
    guarantee the paper's Algorithm 1 provides."""

    def test_module_memreq_under_budget(self):
        from repro.core.partitioner import segment_mem_bytes
        from repro.hardware import MemoryModel

        task = _task()
        cfg = FedProphetConfig(
            num_clients=4, clients_per_round=2, local_iters=1, batch_size=16,
            rounds=1, rounds_per_module=1, patience=1, eval_every=0,
            r_min_fraction=0.35, val_samples=16, val_pgd_steps=1, seed=0,
        )
        fed = FedProphet(task, _builder, cfg)
        mem = MemoryModel(batch_size=cfg.batch_size)
        for a, b in fed.partition.ranges:
            if b - a > 1:
                assert segment_mem_bytes(fed.global_model, a, b, mem) < fed.r_min
