"""Frozen-prefix activation cache: correctness and bookkeeping.

The load-bearing property: cascade training with the cache enabled is
*bit-identical* to training without it — the cache is a pure
execution-engine optimisation, never an approximation.
"""

import numpy as np
import pytest

from repro.core import FedProphet, FedProphetConfig, PrefixCache
from repro.core.cascade import CascadeBatchSpec, cascade_local_train
from repro.data import make_cifar10_like
from repro.data.dataset import ArrayDataset, DataLoader
from repro.models import build_cnn, build_vgg


class TestPrefixCacheUnit:
    def test_miss_then_hit(self):
        cache = PrefixCache()
        calls = []

        def fwd(xb):
            calls.append(len(xb))
            return xb * 2.0

        x = np.arange(12, dtype=np.float32).reshape(6, 2)
        out1 = cache.fetch("k", np.array([0, 2, 4]), x[[0, 2, 4]], fwd, 6)
        np.testing.assert_array_equal(out1, x[[0, 2, 4]] * 2.0)
        assert calls == [3]
        # same rows again: served from the store, no recompute
        out2 = cache.fetch("k", np.array([4, 0]), x[[4, 0]], fwd, 6)
        np.testing.assert_array_equal(out2, x[[4, 0]] * 2.0)
        assert calls == [3]
        assert cache.stats()["hits"] == 2

    def test_partial_miss_computes_only_missing(self):
        cache = PrefixCache()
        seen = []

        def fwd(xb):
            seen.append(xb.copy())
            return xb + 1.0

        x = np.arange(8, dtype=np.float32).reshape(4, 2)
        cache.fetch("k", np.array([0, 1]), x[[0, 1]], fwd, 4)
        cache.fetch("k", np.array([1, 2]), x[[1, 2]], fwd, 4)
        # second call recomputed only row 2
        np.testing.assert_array_equal(seen[1], x[[2]])

    def test_keys_are_isolated(self):
        cache = PrefixCache()
        x = np.ones((2, 2), dtype=np.float32)
        cache.fetch(("a", 1), np.array([0]), x[:1], lambda b: b * 2, 2)
        out = cache.fetch(("b", 1), np.array([0]), x[:1], lambda b: b * 3, 2)
        np.testing.assert_array_equal(out, x[:1] * 3)

    def test_invalidate_clears(self):
        cache = PrefixCache()
        calls = []

        def fwd(xb):
            calls.append(1)
            return xb

        x = np.ones((2, 2), dtype=np.float32)
        cache.fetch("k", np.array([0]), x[:1], fwd, 2)
        cache.invalidate()
        assert len(cache) == 0
        cache.fetch("k", np.array([0]), x[:1], fwd, 2)
        assert len(calls) == 2
        assert cache.stats()["invalidations"] == 1

    def test_eviction_respects_max_bytes(self):
        entry_bytes = 4 * 4 * 4  # 4 samples x 4 features x float32
        cache = PrefixCache(max_bytes=2 * entry_bytes)
        x = np.ones((4, 4), dtype=np.float32)
        idx = np.arange(4)
        for key in range(3):
            cache.fetch(key, idx, x, lambda b: b, 4)
        assert len(cache) == 2
        assert cache.nbytes() <= 2 * entry_bytes

    def test_oversized_entry_bypasses_cache_without_evicting_others(self):
        small_entry = 4 * 4 * 4  # 4 samples x 4 float32 features
        cache = PrefixCache(max_bytes=2 * small_entry)
        x_small = np.ones((4, 4), dtype=np.float32)
        cache.fetch("small", np.arange(4), x_small, lambda b: b, 4)
        # 100 samples x 4 features -> 1600 bytes > max_bytes: uncacheable
        x_big = np.full((5, 4), 3.0, dtype=np.float32)
        out = cache.fetch("big", np.arange(5), x_big, lambda b: b * 2, 100)
        np.testing.assert_array_equal(out, x_big * 2)
        assert "big" not in cache._entries
        # the small client's entry survived
        assert "small" in cache._entries
        again = cache.fetch("small", np.arange(4), x_small, lambda b: b, 4)
        np.testing.assert_array_equal(again, x_small)
        assert cache.stats()["hits"] == 4

    def test_returned_array_does_not_alias_store(self):
        cache = PrefixCache()
        x = np.ones((2, 2), dtype=np.float32)
        out = cache.fetch("k", np.array([0, 1]), x, lambda b: b * 2, 2)
        out[...] = -1.0
        again = cache.fetch("k", np.array([0, 1]), x, lambda b: b * 2, 2)
        np.testing.assert_array_equal(again, x * 2)


def _loader_rng():
    return np.random.default_rng(123)


class TestCascadeBitIdentity:
    def _train(self, cache):
        rng = np.random.default_rng(0)
        model = build_cnn(3, 4, (3, 8, 8), base_channels=4, rng=rng)
        data_rng = np.random.default_rng(1)
        x = data_rng.uniform(0, 1, size=(40, 3, 8, 8)).astype(np.float32)
        y = data_rng.integers(0, 4, size=40)
        spec = CascadeBatchSpec(start_atom=1, stop_atom=len(model.atoms), head=None)
        loss = cascade_local_train(
            model,
            spec,
            ArrayDataset(x, y),
            iterations=6,
            batch_size=16,
            lr=0.05,
            mu=1e-5,
            eps0=8 / 255,
            eps_feature=0.4,
            attack_steps=3,
            rng=_loader_rng(),
            prefix_cache=cache,
            cache_key=0,
        )
        return loss, model.state_dict()

    def test_local_training_bit_identical(self):
        cache = PrefixCache()
        loss_c, state_c = self._train(cache)
        loss_n, state_n = self._train(None)
        assert loss_c == loss_n
        for k in state_n:
            np.testing.assert_array_equal(state_c[k], state_n[k], err_msg=k)
        # multiple local epochs over 40 samples -> the cache must have hits
        assert cache.stats()["hits"] > 0


class TestFedProphetBitIdentity:
    def _run(self, use_cache):
        task = make_cifar10_like(image_size=8, train_per_class=20, test_per_class=5, seed=0)
        cfg = FedProphetConfig(
            num_clients=4, clients_per_round=2, local_iters=6, batch_size=16,
            lr=0.05, rounds=3, train_pgd_steps=2, eval_pgd_steps=2, eval_every=0,
            seed=0, rounds_per_module=1, patience=1, r_min_fraction=0.35,
            val_samples=20, val_pgd_steps=2, use_prefix_cache=use_cache,
        )
        exp = FedProphet(
            task,
            lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
            cfg,
        )
        history = exp.run(rounds=3)
        return exp, history

    def test_three_rounds_bit_identical(self):
        """Cache on vs off: identical losses, metrics, and parameters."""
        exp_c, hist_c = self._run(True)
        exp_n, hist_n = self._run(False)
        assert len(hist_c) == len(hist_n) == 3
        for a, b in zip(hist_c, hist_n):
            assert a.eval.clean_acc == b.eval.clean_acc
            assert a.eval.pgd_acc == b.eval.pgd_acc
        state_c = exp_c.global_model.state_dict()
        state_n = exp_n.global_model.state_dict()
        for k in state_n:
            np.testing.assert_array_equal(state_c[k], state_n[k], err_msg=k)
        for hc, hn in zip(exp_c.heads, exp_n.heads):
            if hn is None:
                continue
            sc, sn = hc.state_dict(), hn.state_dict()
            for k in sn:
                np.testing.assert_array_equal(sc[k], sn[k], err_msg=k)
        # rounds 2 and 3 train module >= 1: the frozen prefix was cached
        assert exp_c.prefix_cache.stats()["hits"] > 0
        # version-keyed invalidation: one bump per module stage entered,
        # never per round (each of the 3 rounds opened a new stage here)
        assert exp_c.prefix_cache.stats()["invalidations"] == len(exp_c.stage_results)
        assert exp_n.prefix_cache is None
