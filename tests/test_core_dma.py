"""Tests for Differentiated Module Assignment (Eq. 14–15)."""

import numpy as np
import pytest

from repro.core.dma import SegmentCostTable, assign_modules
from repro.core.partitioner import partition_model, full_model_mem_bytes
from repro.hardware.devices import Device, DeviceState
from repro.hardware.memory import MemoryModel
from repro.models import build_vgg

RNG = np.random.default_rng(0)
MEM = MemoryModel(batch_size=8)


def _setup():
    model = build_vgg("vgg11", 10, (3, 16, 16), width_mult=0.25, rng=RNG)
    r_max = full_model_mem_bytes(model, MEM)
    partition = partition_model(model, 0.25 * r_max, MEM)
    assert partition.num_modules >= 3, "test needs a multi-module partition"
    table = SegmentCostTable(model, partition, MEM)
    return model, partition, table


def _state(mem_bytes, perf_flops):
    return DeviceState(
        Device("t", perf_flops / 1e12, mem_bytes / 1024**3 * 5, 16),
        avail_mem_bytes=mem_bytes,
        avail_perf_flops=perf_flops,
    )


class TestSegmentCostTable:
    def test_costs_monotone_in_span(self):
        _, partition, table = _setup()
        for a in range(len(partition)):
            flops = [table.cost(a, b).flops_fwd for b in range(a, len(partition))]
            assert flops == sorted(flops)

    def test_all_spans_present(self):
        _, partition, table = _setup()
        m = len(partition)
        for a in range(m):
            for b in range(a, m):
                assert table.cost(a, b).mem_bytes > 0


class TestAssignModules:
    def test_poor_client_gets_only_current_module(self):
        _, partition, table = _setup()
        tiny = table.cost(0, 0)
        states = [_state(tiny.mem_bytes * 1.01, 1e9)]
        out = assign_modules(table, 0, states)
        assert out == [0]

    def test_rich_fast_client_gets_more_modules(self):
        """A prophet client with huge memory and FLOPs headroom extends."""
        _, partition, table = _setup()
        poor = _state(table.cost(1, 1).mem_bytes * 1.01, 1e9)
        rich = _state(1e15, 1e14)  # vastly richer than the poor one
        out = assign_modules(table, 1, [poor, rich])
        assert out[0] == 1
        assert out[1] > 1

    def test_flops_constraint_blocks_extension(self):
        """Same memory headroom, but no perf headroom vs the slowest client:
        Eq. 15 must keep the assignment at a single module."""
        _, partition, table = _setup()
        same_perf = 1e10
        a = _state(1e15, same_perf)
        b = _state(1e15, same_perf)
        out = assign_modules(table, 0, [a, b])
        # budget = (P_k/P_min) * F(m) = F(m) exactly; extending exceeds it.
        assert out == [0, 0]

    def test_memory_constraint_blocks_extension(self):
        _, partition, table = _setup()
        just_one = table.cost(0, 0).mem_bytes * 1.01
        fast_but_small = _state(just_one, 1e14)
        slow = _state(just_one, 1e9)
        out = assign_modules(table, 0, [fast_but_small, slow])
        assert out[0] == 0

    def test_disabled_dma(self):
        _, partition, table = _setup()
        states = [_state(1e15, 1e14)]
        assert assign_modules(table, 0, states, enabled=False) == [0]

    def test_none_states_fall_back(self):
        _, partition, table = _setup()
        assert assign_modules(table, 0, [None, None]) == [0, 0]

    def test_last_module_cannot_extend(self):
        _, partition, table = _setup()
        last = len(partition) - 1
        states = [_state(1e15, 1e14)]
        assert assign_modules(table, last, states) == [last]

    def test_assignment_never_exceeds_module_count(self):
        _, partition, table = _setup()
        rng = np.random.default_rng(3)
        states = [
            _state(rng.uniform(1e6, 1e12), rng.uniform(1e9, 1e13)) for _ in range(20)
        ]
        for m in range(len(partition)):
            out = assign_modules(table, m, states)
            assert all(m <= mk <= len(partition) - 1 for mk in out)
