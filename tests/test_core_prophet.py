"""End-to-end tests for the FedProphet orchestrator (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import FedProphet, FedProphetConfig
from repro.data import make_cifar10_like
from repro.hardware import DEVICE_POOL_CIFAR10, DeviceSampler
from repro.models import build_cnn


def _task():
    return make_cifar10_like(image_size=8, train_per_class=30, test_per_class=10, seed=0)


def _config(**overrides):
    defaults = dict(
        num_clients=6, clients_per_round=3, local_iters=2, batch_size=8,
        lr=0.02, rounds=6, train_pgd_steps=2, rounds_per_module=2,
        patience=5, val_samples=32, val_pgd_steps=2, eval_every=0,
        eval_pgd_steps=2, r_min_fraction=0.4, seed=0,
    )
    defaults.update(overrides)
    return FedProphetConfig(**defaults)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


class TestFedProphetSetup:
    def test_partition_and_heads(self):
        fp = FedProphet(_task(), _builder, _config())
        assert fp.partition.num_modules >= 2
        assert len(fp.heads) == fp.partition.num_modules
        assert fp.heads[-1] is None  # last module uses the backbone output
        assert all(h is not None for h in fp.heads[:-1])

    def test_rmin_fraction_of_rmax(self):
        fp = FedProphet(_task(), _builder, _config(r_min_fraction=0.4))
        assert fp.r_min == pytest.approx(0.4 * fp.r_max)

    def test_head_dims_match_features(self):
        from repro.core.heads import head_input_dim

        fp = FedProphet(_task(), _builder, _config())
        for (start, stop), head in zip(fp.partition.ranges, fp.heads):
            if head is not None:
                shape = fp.global_model.feature_shape(stop - 1)
                assert head.in_features == head_input_dim(shape)
                assert head.out_features == 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FedProphetConfig(mu=-1.0)
        with pytest.raises(ValueError):
            FedProphetConfig(r_min_fraction=0.0)
        with pytest.raises(ValueError):
            FedProphetConfig(patience=0)


class TestFedProphetRun:
    def test_progresses_through_modules(self):
        cfg = _config()
        fp = FedProphet(_task(), _builder, cfg)
        history = fp.run()
        assert len(history) == cfg.rounds
        modules_seen = {e.module for e in fp.pert_log}
        assert len(modules_seen) >= 2  # advanced past the first module

    def test_stage_results_recorded(self):
        fp = FedProphet(_task(), _builder, _config())
        fp.run()
        assert fp.stage_results
        for stage in fp.stage_results:
            assert stage.rounds >= 1
            assert stage.eps_star >= 0
            assert 0 <= stage.final_clean_acc <= 1

    def test_eps_star_positive_after_first_module(self):
        fp = FedProphet(_task(), _builder, _config())
        fp.run()
        assert fp.eps_star[0] > 0

    def test_history_contains_validation_accuracy(self):
        fp = FedProphet(_task(), _builder, _config())
        history = fp.run()
        assert all(r.eval is not None for r in history)
        assert all(0 <= r.eval.clean_acc <= 1 for r in history)

    def test_clock_advances_with_device_sampler(self):
        sampler = DeviceSampler(DEVICE_POOL_CIFAR10, "balanced")
        fp = FedProphet(_task(), _builder, _config(), device_sampler=sampler)
        fp.run()
        assert fp.clock_s > 0

    def test_dma_disabled_all_assignments_current(self):
        sampler = DeviceSampler(DEVICE_POOL_CIFAR10, "balanced")
        fp = FedProphet(
            _task(), _builder, _config(use_dma=False), device_sampler=sampler
        )
        _, states = fp.sample_round(0)
        from repro.core.dma import assign_modules

        out = assign_modules(fp.cost_table, 0, states, enabled=False)
        assert out == [0] * len(states)

    def test_final_model_evaluable(self):
        fp = FedProphet(_task(), _builder, _config())
        fp.run()
        res = fp.final_eval(max_samples=20)
        assert 0 <= res.clean_acc <= 1
        assert res.aa_acc is not None

    def test_apa_updates_epsilon_after_module_zero(self):
        cfg = _config(rounds=6, rounds_per_module=2, use_apa=True)
        fp = FedProphet(_task(), _builder, cfg)
        fp.run()
        later = [e for e in fp.pert_log if e.module > 0]
        assert later and all(np.isfinite(e.eps) for e in later)
        assert any(e.eps > 0 for e in later)

    def test_pert_log_round_monotone(self):
        fp = FedProphet(_task(), _builder, _config())
        fp.run()
        rounds = [e.round for e in fp.pert_log]
        assert rounds == sorted(rounds)

    def test_deterministic_given_seed(self):
        r1 = FedProphet(_task(), _builder, _config()).run()
        r2 = FedProphet(_task(), _builder, _config()).run()
        for a, b in zip(r1, r2):
            assert a.eval.clean_acc == pytest.approx(b.eval.clean_acc)
