"""Tests for the hardware substrate: profiler, memory, FLOPs, devices, latency."""

import numpy as np
import pytest

from repro.hardware import (
    DEVICE_POOL_CALTECH256,
    DEVICE_POOL_CIFAR10,
    Device,
    DeviceSampler,
    DeviceState,
    LatencyModel,
    MemoryModel,
    device_pool,
    forward_flops,
    mem_req_bytes,
    profile_module,
    training_flops_per_iteration,
)
from repro.hardware.latency import LocalTrainingCost
from repro.models import build_cnn, build_model, build_vgg
from repro.nn import BatchNorm2d, Conv2d, Linear, MaxPool2d, ReLU, Sequential

RNG = np.random.default_rng(0)


class TestProfiler:
    def test_conv_profile(self):
        prof = profile_module(Conv2d(3, 8, 3, padding=1), (3, 16, 16))
        assert prof.out_shape == (8, 16, 16)
        assert prof.params == 8 * 3 * 9 + 8
        assert prof.flops == 2 * 8 * 16 * 16 * 3 * 9 + 8 * 16 * 16

    def test_linear_profile(self):
        prof = profile_module(Linear(64, 10), (64,))
        assert prof.params == 650
        assert prof.flops == 2 * 640 + 10
        assert prof.out_shape == (10,)

    def test_out_shapes_match_actual_forward(self):
        """The symbolic shape walker must agree with real execution."""
        for name, shape, wm in [
            ("vgg11", (3, 32, 32), 0.25),
            ("resnet10", (3, 32, 32), 0.25),
            ("cnn3", (3, 16, 16), 1.0),
        ]:
            model = build_model(name, 10, shape, width_mult=wm, rng=RNG)
            prof = profile_module(model, shape)
            model.eval()
            out = model(np.zeros((1,) + shape))
            assert prof.out_shape == tuple(out.shape[1:])

    def test_param_count_matches_model(self):
        model = build_vgg("vgg11", 10, (3, 32, 32), width_mult=0.25, rng=RNG)
        prof = profile_module(model, (3, 32, 32))
        assert prof.params == model.num_parameters()

    def test_maxpool_shape(self):
        prof = profile_module(MaxPool2d(2), (4, 8, 8))
        assert prof.out_shape == (4, 4, 4)
        assert prof.params == 0

    def test_unsupported_module_raises(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            profile_module(Weird(), (3, 8, 8))

    def test_sequential_adds_up(self):
        a, b = Conv2d(3, 4, 3, padding=1), Conv2d(4, 5, 3, padding=1)
        seq = Sequential(a, b)
        pa = profile_module(a, (3, 8, 8))
        pb = profile_module(b, (4, 8, 8))
        ps = profile_module(seq, (3, 8, 8))
        assert ps.params == pa.params + pb.params
        assert ps.flops == pa.flops + pb.flops


class TestMemoryModel:
    def test_vgg16_matches_paper_within_10pct(self):
        """Paper: VGG16 on CIFAR-10 requires ~302 MB with B=64."""
        m = build_vgg("vgg16", 10, (3, 32, 32), rng=RNG)
        mb = mem_req_bytes(m, (3, 32, 32), batch_size=64) / 2**20
        assert abs(mb - 302) / 302 < 0.10

    def test_resnet34_matches_paper_within_10pct(self):
        """Paper: ResNet34 on Caltech-256 requires ~1130 MB with B=32."""
        m = build_model("resnet34", 256, (3, 224, 224), rng=RNG)
        mb = mem_req_bytes(m, (3, 224, 224), batch_size=32) / 2**20
        assert abs(mb - 1130) / 1130 < 0.10

    def test_batch_size_scales_activations_only(self):
        m = build_cnn(2, 10, (3, 16, 16), rng=RNG)
        b1 = mem_req_bytes(m, (3, 16, 16), batch_size=1)
        b2 = mem_req_bytes(m, (3, 16, 16), batch_size=2)
        b3 = mem_req_bytes(m, (3, 16, 16), batch_size=3)
        assert b2 - b1 == b3 - b2  # linear in batch size
        assert b2 > b1

    def test_adversarial_double_batch_costs_more(self):
        m = build_cnn(2, 10, (3, 16, 16), rng=RNG)
        base = mem_req_bytes(m, (3, 16, 16), batch_size=8)
        double = mem_req_bytes(m, (3, 16, 16), batch_size=8, adversarial_double_batch=True)
        assert double > base

    def test_optimizer_state_factor(self):
        m = build_cnn(2, 10, (3, 16, 16), rng=RNG)
        sgd = mem_req_bytes(m, (3, 16, 16), batch_size=8, optimizer_state_factor=0)
        momentum = mem_req_bytes(m, (3, 16, 16), batch_size=8, optimizer_state_factor=1)
        assert momentum - sgd == 4 * m.num_parameters()


class TestFlops:
    def test_pgd_multiplies_propagations(self):
        m = build_cnn(2, 10, (3, 16, 16), rng=RNG)
        st = training_flops_per_iteration(m, (3, 16, 16), 8, pgd_steps=0)
        at = training_flops_per_iteration(m, (3, 16, 16), 8, pgd_steps=10)
        assert at == pytest.approx(11 * st)

    def test_negative_pgd_steps_rejected(self):
        m = build_cnn(2, 10, (3, 16, 16), rng=RNG)
        with pytest.raises(ValueError):
            training_flops_per_iteration(m, (3, 16, 16), 8, pgd_steps=-1)

    def test_forward_flops_positive(self):
        m = build_cnn(2, 10, (3, 16, 16), rng=RNG)
        assert forward_flops(m, (3, 16, 16)) > 0


class TestDevices:
    def test_pools_match_paper_tables(self):
        assert len(DEVICE_POOL_CIFAR10) == 10
        assert len(DEVICE_POOL_CALTECH256) == 10
        names = [d.name for d in DEVICE_POOL_CIFAR10]
        assert "TX2" in names and "GTX 1650m" in names

    def test_device_pool_lookup(self):
        assert device_pool("cifar10") == DEVICE_POOL_CIFAR10
        assert device_pool("caltech-256") == DEVICE_POOL_CALTECH256
        with pytest.raises(ValueError):
            device_pool("mnist")

    def test_unit_conversions(self):
        d = Device("x", 2.0, 4, 8)
        assert d.perf_flops == 2e12
        assert d.mem_bytes == 4 * 1024**3
        assert d.io_bytes_per_s == 8 * 1024**3

    def test_degrading_factors_within_range(self):
        sampler = DeviceSampler(DEVICE_POOL_CIFAR10, "balanced")
        rng = np.random.default_rng(0)
        for _ in range(100):
            s = sampler.sample(rng)
            assert s.avail_mem_bytes <= 0.2 * s.device.mem_bytes + 1
            assert s.avail_perf_flops <= s.device.perf_flops + 1

    def test_unbalanced_prefers_weak_devices(self):
        rng = np.random.default_rng(1)
        bal = DeviceSampler(DEVICE_POOL_CIFAR10, "balanced")
        unbal = DeviceSampler(DEVICE_POOL_CIFAR10, "unbalanced")
        bal_perf = np.mean([bal.sample(rng).device.perf_tflops for _ in range(300)])
        unbal_perf = np.mean([unbal.sample(rng).device.perf_tflops for _ in range(300)])
        assert unbal_perf < bal_perf

    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            DeviceSampler([], "balanced")
        with pytest.raises(ValueError):
            DeviceSampler(DEVICE_POOL_CIFAR10, "chaotic")


class TestLatency:
    def _state(self, mem_gb=1.0, perf_tflops=1.0, io_gbps=1.0):
        d = Device("t", perf_tflops, mem_gb * 5, io_gbps)
        return DeviceState(d, avail_mem_bytes=mem_gb * 1024**3, avail_perf_flops=perf_tflops * 1e12)

    def test_no_swap_when_memory_sufficient(self):
        lm = LatencyModel()
        cost = lm.local_training_cost(
            self._state(mem_gb=2.0), training_flops=1e12, mem_req_bytes=1024**3,
            iterations=10, pgd_steps=10,
        )
        assert cost.access_s == 0.0
        assert cost.compute_s == pytest.approx(10.0)

    def test_swap_traffic_scales_with_passes(self):
        lm = LatencyModel(swap_overhead=1.0)
        t1 = lm.swap_traffic_bytes(2e9, 1e9, passes=1)
        t4 = lm.swap_traffic_bytes(2e9, 1e9, passes=4)
        assert t4 == pytest.approx(4 * t1)
        assert t1 == pytest.approx(2 * 1e9)

    def test_pgd_steps_amplify_access_time(self):
        lm = LatencyModel()
        st = lm.local_training_cost(
            self._state(mem_gb=0.1), 1e12, 1024**3, iterations=5, pgd_steps=0
        )
        at = lm.local_training_cost(
            self._state(mem_gb=0.1), 1e12, 1024**3, iterations=5, pgd_steps=10
        )
        assert at.access_s == pytest.approx(11 * st.access_s)

    def test_cost_addition(self):
        c = LocalTrainingCost(1.0, 2.0) + LocalTrainingCost(0.5, 0.5)
        assert c.compute_s == 1.5 and c.access_s == 2.5 and c.total_s == 4.0

    def test_swap_overhead_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(swap_overhead=0.5)

    def test_negative_iterations_rejected(self):
        lm = LatencyModel()
        with pytest.raises(ValueError):
            lm.local_training_cost(self._state(), 1e9, 1e9, iterations=-1, pgd_steps=0)


class TestDeviceStreams:
    """Counter-derived per-client streams: pure, persistent, disjoint."""

    @staticmethod
    def _sampler():
        return DeviceSampler(DEVICE_POOL_CIFAR10, "unbalanced")

    def test_profile_for_is_pure(self):
        a, b = self._sampler(), self._sampler()
        for cid in range(8):
            assert a.profile_for(0, cid) == b.profile_for(0, cid)
            assert a.profile_for(0, cid) == a.profile_for(0, cid)

    def test_profile_persists_across_rounds(self):
        s = self._sampler()
        for cid in range(6):
            device = s.profile_for(3, cid)
            for round_idx in range(5):
                assert s.state_for(3, round_idx, cid).device == device

    def test_state_varies_by_round_but_not_identity(self):
        s = self._sampler()
        states = [s.state_for(0, r, 2) for r in range(6)]
        assert len({st.avail_perf_flops for st in states}) > 1
        assert len({st.device for st in states}) == 1

    def test_state_factors_respect_floors_and_ranges(self):
        s = self._sampler()
        for r in range(4):
            for cid in range(4):
                st = s.state_for(1, r, cid)
                assert 0 < st.avail_mem_bytes <= st.device.mem_bytes
                assert 0 < st.avail_perf_flops <= st.device.perf_flops

    def test_streams_disjoint_from_sequential_sampling(self):
        """Interleaved sequential sample() draws never perturb the
        counter-derived streams (they share no RNG state)."""
        s = self._sampler()
        before = [(s.profile_for(0, c), s.state_for(0, 1, c)) for c in range(5)]
        s.sample_many(10, np.random.default_rng(123))
        after = [(s.profile_for(0, c), s.state_for(0, 1, c)) for c in range(5)]
        assert before == after

    def test_profile_and_state_streams_disjoint(self):
        """The 3-element profile seed and 4-element state seed cannot
        collide: a client's persistent identity is independent of every
        per-round degradation draw that shares its (seed, cid) prefix."""
        s = self._sampler()
        for cid in range(6):
            device = s.profile_for(0, cid)
            # Feeding round indices that mimic another client's cid must
            # neither change the identity nor correlate the factors.
            states = [s.state_for(0, other, cid) for other in range(6)]
            assert all(st.device == device for st in states)
        seeds = {(s.profile_for(seed, 0).name, seed) for seed in range(4)}
        assert len(seeds) == 4  # distinct seeds resolve independently
