"""Tests for partial-average aggregation of modules and heads (Eq. 16–17)."""

import numpy as np
import pytest

from repro.core.aggregator import (
    aggregate_heads,
    aggregate_modules,
    atom_param_names,
    extract_segment_state,
)
from repro.core.partitioner import Partition
from repro.models import build_cnn
from repro.nn import Linear

RNG = np.random.default_rng(0)


def _model():
    return build_cnn(3, 4, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))


def _partition():
    return Partition(ranges=((0, 1), (1, 2), (2, 4)))


class TestAtomParamNames:
    def test_names_prefixed_by_atom(self):
        model = _model()
        names = atom_param_names(model, 0, 1)
        assert names and all(n.startswith("atom0.") for n in names)

    def test_includes_buffers(self):
        model = _model()
        names = atom_param_names(model, 0, 1)
        assert any("running_mean" in n for n in names)

    def test_extract_matches_state_dict(self):
        model = _model()
        seg = extract_segment_state(model, 1, 3)
        full = model.state_dict()
        for k, v in seg.items():
            np.testing.assert_array_equal(v, full[k])
        assert all(k.startswith(("atom1.", "atom2.")) for k in seg)


class TestAggregateModules:
    def test_single_client_passthrough(self):
        model = _model()
        part = _partition()
        state = extract_segment_state(model, 0, 1)
        shifted = {k: v + 1.0 for k, v in state.items()}
        merged = aggregate_modules(model, part, 0, [shifted], [0], [1.0])
        for k in state:
            np.testing.assert_allclose(merged[k], state[k] + 1.0)

    def test_weighted_mean_over_trainers(self):
        model = _model()
        part = _partition()
        base = extract_segment_state(model, 0, 1)
        s1 = {k: np.zeros_like(v) for k, v in base.items()}
        s2 = {k: np.ones_like(v) * 4 for k, v in base.items()}
        merged = aggregate_modules(model, part, 0, [s1, s2], [0, 0], [3.0, 1.0])
        for k in base:
            np.testing.assert_allclose(merged[k], np.ones_like(base[k]))

    def test_dma_clients_contribute_to_future_modules(self):
        """A client with M_k=1 contributes to modules 0 and 1; one with
        M_k=0 contributes only to module 0 (Eq. 16's S_n sets)."""
        model = _model()
        part = _partition()
        full0 = extract_segment_state(model, 0, 1)
        full01 = extract_segment_state(model, 0, 2)
        c_small = {k: np.zeros_like(v) for k, v in full0.items()}
        c_big = {k: np.ones_like(v) * 2 for k, v in full01.items()}
        merged = aggregate_modules(model, part, 0, [c_small, c_big], [0, 1], [1.0, 1.0])
        # module 0 keys: averaged over both -> 1.0
        for k in full0:
            np.testing.assert_allclose(merged[k], np.ones_like(full0[k]))
        # module 1 keys: only the big client -> 2.0
        for k in set(full01) - set(full0):
            np.testing.assert_allclose(merged[k], 2 * np.ones_like(full01[k]))

    def test_untrained_modules_absent(self):
        model = _model()
        part = _partition()
        state = extract_segment_state(model, 0, 1)
        merged = aggregate_modules(model, part, 0, [state], [0], [1.0])
        assert all(k.startswith("atom0.") for k in merged)

    def test_length_mismatch_rejected(self):
        model = _model()
        with pytest.raises(ValueError):
            aggregate_modules(model, _partition(), 0, [{}], [0, 1], [1.0])


class TestAggregateHeads:
    def test_only_matching_assignment_updates(self):
        h0 = Linear(4, 2, rng=RNG)
        h1 = Linear(4, 2, rng=RNG)
        heads = [h0, h1, None]
        h1_before = h1.state_dict()
        update = {k: v * 0 for k, v in h0.state_dict().items()}
        aggregate_heads(heads, [update], [0], [1.0])
        np.testing.assert_allclose(h0.weight.data, 0.0)
        for k, v in h1.state_dict().items():
            np.testing.assert_array_equal(v, h1_before[k])

    def test_weighted_average(self):
        h = Linear(3, 2, rng=RNG)
        heads = [h]
        s1 = {k: np.zeros_like(v) for k, v in h.state_dict().items()}
        s2 = {k: np.ones_like(v) * 2 for k, v in h.state_dict().items()}
        aggregate_heads(heads, [s1, s2], [0, 0], [1.0, 1.0])
        np.testing.assert_allclose(h.weight.data, 1.0)

    def test_none_heads_skipped(self):
        aggregate_heads([None], [None], [0], [1.0])  # must not raise
