"""Finite-difference gradient checks for every layer type.

These are the load-bearing tests of the whole reproduction: PGD attacks
and cascade training consume exactly the input gradients checked here.

The whole module runs under a float64 compute-dtype scope: central
differences with eps=1e-5 cannot resolve gradients against float32
parameter storage, and the analytic math is dtype-independent, so double
precision is the right instrument here (production stays float32).
"""

import numpy as np
import pytest

from repro.nn import dtype_scope
from repro.nn import (
    AvgPool2d,
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    ConvBNReLU,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tanh,
)
from tests.helpers import check_layer_input_grad, check_layer_param_grads

RNG = np.random.default_rng(42)


@pytest.fixture(autouse=True)
def _float64_compute():
    with dtype_scope(np.float64):
        yield


def _x(shape):
    return RNG.normal(size=shape)


class TestLinear:
    def test_input_grad(self):
        check_layer_input_grad(Linear(5, 3, rng=RNG), _x((4, 5)))

    def test_param_grads(self):
        check_layer_param_grads(Linear(5, 3, rng=RNG), _x((4, 5)))

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=RNG)
        check_layer_input_grad(layer, _x((3, 4)))
        check_layer_param_grads(layer, _x((3, 4)))

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            Linear(4, 2)(np.zeros((2, 2, 2)))


class TestConv2d:
    def test_input_grad_3x3(self):
        check_layer_input_grad(Conv2d(2, 3, 3, padding=1, rng=RNG), _x((2, 2, 5, 5)))

    def test_param_grads_3x3(self):
        check_layer_param_grads(Conv2d(2, 3, 3, padding=1, rng=RNG), _x((2, 2, 5, 5)))

    def test_strided(self):
        check_layer_input_grad(Conv2d(2, 2, 3, stride=2, padding=1, rng=RNG), _x((1, 2, 7, 7)))

    def test_1x1(self):
        check_layer_input_grad(Conv2d(3, 2, 1, rng=RNG), _x((2, 3, 4, 4)))

    def test_no_bias_param_grads(self):
        check_layer_param_grads(Conv2d(2, 2, 3, padding=1, bias=False, rng=RNG), _x((1, 2, 4, 4)))

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            Conv2d(3, 2, 3)(np.zeros((1, 4, 5, 5)))


class TestActivations:
    def test_relu_input_grad(self):
        check_layer_input_grad(ReLU(), _x((3, 4)) + 0.1)  # avoid kink at 0

    def test_leaky_relu_input_grad(self):
        check_layer_input_grad(LeakyReLU(0.1), _x((3, 4)) + 0.1)

    def test_tanh_input_grad(self):
        check_layer_input_grad(Tanh(), _x((3, 4)))

    def test_leaky_relu_negative_slope_validation(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.5)


class TestPooling:
    def test_maxpool_input_grad(self):
        # distinct values so the argmax is stable under perturbation
        x = np.arange(2 * 2 * 4 * 4, dtype=float).reshape(2, 2, 4, 4)
        x += RNG.normal(scale=0.01, size=x.shape)
        check_layer_input_grad(MaxPool2d(2), x)

    def test_maxpool_3x3_stride2_pad1(self):
        x = np.arange(1 * 2 * 7 * 7, dtype=float).reshape(1, 2, 7, 7)
        x += RNG.normal(scale=0.01, size=x.shape)
        check_layer_input_grad(MaxPool2d(3, stride=2, padding=1), x)

    def test_avgpool_input_grad(self):
        check_layer_input_grad(AvgPool2d(2), _x((2, 2, 4, 4)))

    def test_global_avgpool_input_grad(self):
        check_layer_input_grad(GlobalAvgPool2d(), _x((2, 3, 4, 4)))


class TestBatchNorm:
    def test_train_mode_input_grad(self):
        layer = BatchNorm2d(3)
        layer.train()
        check_layer_input_grad(layer, _x((4, 3, 3, 3)), rtol=1e-3, atol=1e-5)

    def test_train_mode_param_grads(self):
        layer = BatchNorm2d(3)
        layer.train()
        check_layer_param_grads(layer, _x((4, 3, 3, 3)), rtol=1e-3, atol=1e-5)

    def test_eval_mode_input_grad(self):
        layer = BatchNorm2d(3)
        layer.set_buffer("running_mean", RNG.normal(size=3))
        layer.set_buffer("running_var", np.abs(RNG.normal(size=3)) + 0.5)
        layer.eval()
        check_layer_input_grad(layer, _x((2, 3, 3, 3)))


class TestComposites:
    def test_flatten_grad(self):
        check_layer_input_grad(Flatten(), _x((2, 3, 2, 2)))

    def test_conv_bn_relu_input_grad(self):
        block = ConvBNReLU(2, 3, rng=RNG)
        block.train()
        check_layer_input_grad(block, _x((2, 2, 4, 4)), rtol=1e-3, atol=1e-5)

    def test_basic_block_identity_skip(self):
        block = BasicBlock(3, 3, stride=1, rng=RNG)
        block.train()
        check_layer_input_grad(block, _x((2, 3, 4, 4)), rtol=1e-3, atol=1e-5)

    def test_basic_block_downsample(self):
        block = BasicBlock(2, 4, stride=2, rng=RNG)
        block.train()
        check_layer_input_grad(block, _x((2, 2, 4, 4)), rtol=1e-3, atol=1e-5)

    def test_sequential_chain(self):
        model = Sequential(
            Conv2d(1, 2, 3, padding=1, rng=RNG),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(2 * 2 * 2, 3, rng=RNG),
        )
        x = _x((2, 1, 4, 4))
        check_layer_input_grad(model, x, rtol=1e-3, atol=1e-5)
