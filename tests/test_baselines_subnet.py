"""Tests for width-sliced sub-model extraction and scatter-back."""

import numpy as np
import pytest

from repro.baselines.subnet import extract_submodel, scatter_submodel_state
from repro.models import build_cnn, build_resnet, build_vgg

RNG = np.random.default_rng(0)


def _vgg():
    return build_vgg("vgg11", 10, (3, 16, 16), width_mult=0.5, rng=np.random.default_rng(1))


def _resnet():
    return build_resnet("resnet10", 10, (3, 16, 16), width_mult=0.5, rng=np.random.default_rng(2))


class TestExtraction:
    @pytest.mark.parametrize("strategy", ["static", "random", "rolling"])
    def test_submodel_forward_works(self, strategy):
        model = _vgg()
        piece = extract_submodel(model, 0.5, strategy, round_idx=3, rng=RNG)
        piece.model.eval()
        out = piece.model(RNG.uniform(size=(2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_full_ratio_is_identity(self):
        model = _vgg()
        model.eval()
        piece = extract_submodel(model, 1.0, "static")
        piece.model.eval()
        x = RNG.uniform(size=(2, 3, 16, 16))
        np.testing.assert_allclose(piece.model(x), model(x), rtol=1e-10)

    def test_smaller_ratio_fewer_params(self):
        model = _vgg()
        half = extract_submodel(model, 0.5, "static").model
        quarter = extract_submodel(model, 0.25, "static").model
        assert quarter.num_parameters() < half.num_parameters() < model.num_parameters()

    def test_output_classes_never_sliced(self):
        model = _vgg()
        piece = extract_submodel(model, 0.25, "random", rng=RNG)
        out = piece.model(RNG.uniform(size=(1, 3, 16, 16)))
        assert out.shape == (1, 10)

    def test_resnet_identity_skip_alignment(self):
        model = _resnet()
        for strategy in ("static", "random", "rolling"):
            piece = extract_submodel(model, 0.5, strategy, round_idx=1, rng=RNG)
            piece.model.eval()
            out = piece.model(RNG.uniform(size=(2, 3, 16, 16)))
            assert out.shape == (2, 10)

    def test_sliced_weights_are_copies(self):
        model = _vgg()
        piece = extract_submodel(model, 0.5, "static")
        name, p = next(iter(piece.model.named_parameters()))
        p.data[...] = 777.0
        assert not any(
            np.any(q.data == 777.0) for q in model.parameters()
        )

    def test_rolling_window_moves_with_round(self):
        model = _vgg()
        p0 = extract_submodel(model, 0.5, "rolling", round_idx=0)
        p1 = extract_submodel(model, 0.5, "rolling", round_idx=1)
        key = next(k for k in p0.index_map if k.endswith("conv.weight"))
        assert not np.array_equal(p0.index_map[key][0], p1.index_map[key][0])

    def test_static_is_prefix(self):
        model = _vgg()
        piece = extract_submodel(model, 0.5, "static")
        for axes in piece.index_map.values():
            for idx in axes:
                np.testing.assert_array_equal(idx, np.arange(len(idx)))

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            extract_submodel(_vgg(), 0.0, "static")

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            extract_submodel(_vgg(), 0.5, "mystery")


class TestScatter:
    def test_roundtrip_full_ratio(self):
        model = _vgg()
        piece = extract_submodel(model, 1.0, "static")
        global_state = model.state_dict()
        scattered, mask = scatter_submodel_state(
            piece.model.state_dict(), piece.index_map, global_state
        )
        for k in piece.index_map:
            np.testing.assert_allclose(scattered[k], global_state[k])
            np.testing.assert_array_equal(mask[k], np.ones_like(mask[k]))

    def test_partial_mask_covers_only_slice(self):
        model = _vgg()
        piece = extract_submodel(model, 0.5, "static", rng=RNG)
        global_state = model.state_dict()
        scattered, mask = scatter_submodel_state(
            piece.model.state_dict(), piece.index_map, global_state
        )
        key = next(k for k in piece.index_map if k.endswith("conv.weight"))
        covered = mask[key].sum()
        assert 0 < covered < mask[key].size

    def test_scattered_values_land_in_right_place(self):
        model = _vgg()
        piece = extract_submodel(model, 0.5, "static", rng=RNG)
        sub_state = piece.model.state_dict()
        key = next(k for k in piece.index_map if k.endswith("conv.weight"))
        global_state = model.state_dict()
        scattered, mask = scatter_submodel_state(sub_state, piece.index_map, global_state)
        out_idx, in_idx = piece.index_map[key][:2]
        np.testing.assert_allclose(
            scattered[key][np.ix_(out_idx, in_idx)], sub_state[key]
        )

    def test_cnn_roundtrip_after_training_step(self):
        """Slice, perturb the sub-model, scatter: global-shaped update has
        the perturbation exactly on the sliced coordinates."""
        model = build_cnn(2, 4, (3, 8, 8), base_channels=8, rng=RNG)
        piece = extract_submodel(model, 0.5, "random", rng=np.random.default_rng(5))
        for p in piece.model.parameters():
            p.data += 1.0
        scattered, mask = scatter_submodel_state(
            piece.model.state_dict(), piece.index_map, model.state_dict()
        )
        for k, axes in piece.index_map.items():
            orig = model.state_dict()[k]
            ix = np.ix_(*(tuple(axes) + tuple(
                np.arange(orig.shape[d]) for d in range(len(axes), orig.ndim)
            )))
            if k.split(".")[-1] in ("weight", "bias"):
                np.testing.assert_allclose(scattered[k][ix], orig[ix] + 1.0)
