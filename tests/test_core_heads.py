"""Tests for the auxiliary output heads (GAP + linear)."""

import numpy as np
import pytest

from repro.core.heads import AuxHead, head_input_dim
from tests.helpers import numerical_grad

RNG = np.random.default_rng(0)


class TestHeadInputDim:
    def test_conv_features_pool_to_channels(self):
        assert head_input_dim((64, 8, 8)) == 64

    def test_flat_features_pass_through(self):
        assert head_input_dim((128,)) == 128

    def test_2d_features_flatten(self):
        assert head_input_dim((4, 5)) == 20


class TestAuxHeadConv:
    def test_forward_shape(self):
        head = AuxHead((8, 4, 4), 10, rng=RNG)
        z = RNG.normal(size=(3, 8, 4, 4))
        assert head(z).shape == (3, 10)

    def test_forward_equals_gap_then_linear(self):
        head = AuxHead((8, 4, 4), 10, rng=RNG)
        z = RNG.normal(size=(2, 8, 4, 4))
        expected = head.linear(z.mean(axis=(2, 3)))
        np.testing.assert_allclose(head(z), expected)

    def test_backward_shape_and_value(self):
        head = AuxHead((4, 3, 3), 5, rng=RNG)
        z = RNG.normal(size=(2, 4, 3, 3))
        out = head(z)
        g_logits = RNG.normal(size=out.shape)
        head.zero_grad()
        g_z = head.backward(g_logits)
        assert g_z.shape == z.shape

        def objective():
            return float((g_logits * head(z)).sum())

        numeric = numerical_grad(objective, z)
        np.testing.assert_allclose(g_z, numeric, rtol=1e-5, atol=1e-8)

    def test_linear_param_grads_accumulate(self):
        head = AuxHead((4, 2, 2), 3, rng=RNG)
        z = RNG.normal(size=(2, 4, 2, 2))
        head.zero_grad()
        head.backward_ready = head(z)
        head.backward(np.ones((2, 3)))
        assert np.abs(head.linear.weight.grad).sum() > 0

    def test_rejects_wrong_rank(self):
        head = AuxHead((4, 2, 2), 3, rng=RNG)
        with pytest.raises(ValueError):
            head(np.zeros((2, 16)))


class TestAuxHeadFlat:
    def test_flat_features(self):
        head = AuxHead((12,), 4, rng=RNG)
        z = RNG.normal(size=(3, 12))
        assert head(z).shape == (3, 4)
        g = head.backward(np.ones((3, 4)))
        assert g.shape == z.shape

    def test_gradient_matches_numeric(self):
        head = AuxHead((6,), 3, rng=RNG)
        z = RNG.normal(size=(2, 6))
        out = head(z)
        g_logits = RNG.normal(size=out.shape)
        g_z = head.backward(g_logits)

        def objective():
            return float((g_logits * head(z)).sum())

        numeric = numerical_grad(objective, z)
        np.testing.assert_allclose(g_z, numeric, rtol=1e-6, atol=1e-9)


class TestAuxHeadAsModule:
    def test_state_dict_roundtrip(self):
        h1 = AuxHead((4, 2, 2), 3, rng=np.random.default_rng(1))
        h2 = AuxHead((4, 2, 2), 3, rng=np.random.default_rng(2))
        h2.load_state_dict(h1.state_dict())
        z = RNG.normal(size=(2, 4, 2, 2))
        np.testing.assert_allclose(h1(z), h2(z))

    def test_in_out_features(self):
        head = AuxHead((16, 4, 4), 10, rng=RNG)
        assert head.in_features == 16
        assert head.out_features == 10

    def test_parameters_exposed(self):
        head = AuxHead((4, 2, 2), 3, rng=RNG)
        names = [n for n, _ in head.named_parameters()]
        assert names == ["linear.weight", "linear.bias"]
