"""Tests for the model zoo and the cascade/atom abstraction."""

import numpy as np
import pytest

from repro.models import (
    CascadeModel,
    build_cnn,
    build_model,
    build_resnet,
    build_vgg,
    model_family,
)
from repro.nn import DualBatchNorm2d

RNG = np.random.default_rng(0)


class TestVGG:
    def test_vgg16_atom_count_matches_paper(self):
        """Paper Table 7: VGG16 = 13 conv atoms + 3 linear atoms."""
        m = build_vgg("vgg16", 10, (3, 32, 32), rng=RNG)
        assert len(m.atoms) == 16
        names = m.atom_names()
        assert names[0] == "conv1" and names[12] == "conv13"
        assert names[13:] == ["linear1", "linear2", "linear3"]

    def test_vgg11_forward_shape(self):
        m = build_vgg("vgg11", 10, (3, 32, 32), width_mult=0.25, rng=RNG)
        out = m(RNG.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_width_mult_scales_channels(self):
        full = build_vgg("vgg11", 10, (3, 32, 32), rng=RNG)
        half = build_vgg("vgg11", 10, (3, 32, 32), width_mult=0.5, rng=RNG)
        assert half.num_parameters() < 0.5 * full.num_parameters()

    def test_small_input_skips_pools(self):
        m = build_vgg("vgg16", 10, (3, 8, 8), width_mult=0.125, rng=RNG)
        out = m(RNG.normal(size=(1, 3, 8, 8)))
        assert out.shape == (1, 10)

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            build_vgg("vgg99", 10, (3, 32, 32))


class TestResNet:
    def test_resnet34_atom_count_matches_paper(self):
        """Paper Table 8: ResNet34 = conv1 + 16 basic blocks + linear."""
        m = build_resnet("resnet34", 256, (3, 64, 64), width_mult=0.125, rng=RNG)
        assert len(m.atoms) == 18
        assert m.atom_names()[0] == "conv1"
        assert m.atom_names()[-1] == "linear"

    def test_resnet10_forward_shape(self):
        m = build_resnet("resnet10", 5, (3, 16, 16), width_mult=0.25, rng=RNG)
        out = m(RNG.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 5)

    def test_large_input_uses_downsampling_stem(self):
        big = build_resnet("resnet10", 5, (3, 64, 64), width_mult=0.125, rng=RNG)
        small = build_resnet("resnet10", 5, (3, 16, 16), width_mult=0.125, rng=RNG)
        # 7x7/s2 + maxpool stem reduces 64 -> 16; CIFAR stem keeps 16.
        assert big.atoms[0].out_shape[-1] == 16
        assert small.atoms[0].out_shape[-1] == 16

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            build_resnet("resnet99", 10, (3, 32, 32))


class TestCNN:
    def test_cnn3_structure(self):
        m = build_cnn(3, 10, (3, 32, 32), rng=RNG)
        assert len(m.atoms) == 4  # 3 conv + linear head

    def test_cnn_forward_backward(self):
        m = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=RNG)
        x = RNG.normal(size=(3, 3, 8, 8))
        out = m(x)
        g = m.backward(np.ones_like(out))
        assert g.shape == x.shape

    def test_invalid_num_conv(self):
        with pytest.raises(ValueError):
            build_cnn(0, 10, (3, 8, 8))


class TestCascadeModel:
    def _model(self):
        return build_cnn(3, 10, (3, 16, 16), base_channels=4, rng=RNG)

    def test_infer_shapes_populates_atoms(self):
        m = self._model()
        for atom in m.atoms:
            assert atom.out_shape
        assert m.atoms[-1].out_shape == (10,)

    def test_segment_shares_parameters(self):
        m = self._model()
        seg = m.segment(0, 2)
        seg_params = {id(p) for p in seg.parameters()}
        atom_params = {
            id(p) for a in m.atoms[:2] for p in a.module.parameters()
        }
        assert seg_params == atom_params

    def test_segment_invalid_range(self):
        m = self._model()
        with pytest.raises(IndexError):
            m.segment(2, 2)
        with pytest.raises(IndexError):
            m.segment(0, 99)

    def test_forward_until_matches_partial_forward(self):
        m = self._model()
        m.eval()
        x = RNG.normal(size=(2, 3, 16, 16))
        z = m.forward_until(x, 2)
        z2 = m.atoms[1].module(m.atoms[0].module(x))
        np.testing.assert_allclose(z, z2)

    def test_feature_shape_minus_one_is_input(self):
        m = self._model()
        assert m.feature_shape(-1) == (3, 16, 16)
        assert m.feature_size(-1) == 3 * 16 * 16

    def test_full_forward_equals_atom_chain(self):
        m = self._model()
        m.eval()
        x = RNG.normal(size=(2, 3, 16, 16))
        out = m(x)
        z = x
        for atom in m.atoms:
            z = atom.module(z)
        np.testing.assert_allclose(out, z)

    def test_empty_atoms_rejected(self):
        with pytest.raises(ValueError):
            CascadeModel([], in_shape=(3, 8, 8), num_classes=2)


class TestZoo:
    def test_build_model_dispatch(self):
        assert build_model("vgg11", 10, (3, 16, 16), width_mult=0.25).name == "vgg11"
        assert build_model("resnet10", 10, (3, 16, 16), width_mult=0.25).name == "resnet10"
        assert build_model("cnn3", 10, (3, 16, 16)).name == "cnn3"

    def test_build_model_unknown(self):
        with pytest.raises(ValueError):
            build_model("transformer", 10, (3, 16, 16))

    def test_model_families(self):
        assert model_family("cifar10") == ["cnn3", "vgg11", "vgg13", "vgg16"]
        assert model_family("caltech256") == ["cnn4", "resnet10", "resnet18", "resnet34"]
        with pytest.raises(ValueError):
            model_family("imagenet")

    def test_dual_bn_injection(self):
        m = build_model(
            "cnn2", 4, (3, 8, 8), rng=RNG, bn_cls=DualBatchNorm2d
        )
        assert any(isinstance(x, DualBatchNorm2d) for x in m.modules())
