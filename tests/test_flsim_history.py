"""Tests for round-history utilities."""

import csv

import numpy as np
import pytest

from repro.flsim.base import RoundRecord
from repro.flsim.history import best_round, export_csv, history_rows, time_to_accuracy
from repro.metrics.evaluation import EvalResult


def _history():
    return [
        RoundRecord(0, 10.0, 8.0, 2.0, eval=None),
        RoundRecord(1, 20.0, 16.0, 4.0, eval=EvalResult(0.3, 0.1, None)),
        RoundRecord(2, 30.0, 24.0, 6.0, eval=EvalResult(0.5, 0.25, 0.2)),
        RoundRecord(3, 40.0, 32.0, 8.0, eval=EvalResult(0.45, 0.3, 0.28)),
    ]


class TestHistoryRows:
    def test_rows_align_with_records(self):
        rows = history_rows(_history())
        assert len(rows) == 4
        assert rows[0]["clean_acc"] is None
        assert rows[2]["clean_acc"] == 0.5
        assert rows[3]["sim_time_s"] == 40.0

    def test_empty_history(self):
        assert history_rows([]) == []


class TestExportCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out" / "history.csv")
        export_csv(_history(), path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 4
        assert rows[2]["pgd_acc"] == "0.25"
        assert rows[0]["clean_acc"] == ""


class TestTimeToAccuracy:
    def test_first_crossing(self):
        assert time_to_accuracy(_history(), 0.5) == 30.0

    def test_unreached_target(self):
        assert time_to_accuracy(_history(), 0.99) is None

    def test_ignores_rounds_without_eval(self):
        assert time_to_accuracy(_history(), 0.0) == 20.0


class TestBestRound:
    def test_best_pgd(self):
        rec = best_round(_history(), "pgd_acc")
        assert rec.round == 3

    def test_best_clean(self):
        rec = best_round(_history(), "clean_acc")
        assert rec.round == 2

    def test_metric_with_none_values(self):
        rec = best_round(_history(), "aa_acc")
        assert rec.round == 3

    def test_empty(self):
        assert best_round([], "pgd_acc") is None
