"""Tests for round-history utilities."""

import csv

import numpy as np
import pytest

from repro.flsim.base import RoundRecord
from repro.flsim.history import (
    RunHistory,
    best_round,
    export_csv,
    history_rows,
    round_record_from_dict,
    round_record_to_dict,
    time_to_accuracy,
)
from repro.metrics.evaluation import EvalResult


def _history():
    return [
        RoundRecord(0, 10.0, 8.0, 2.0, eval=None),
        RoundRecord(1, 20.0, 16.0, 4.0, eval=EvalResult(0.3, 0.1, None)),
        RoundRecord(2, 30.0, 24.0, 6.0, eval=EvalResult(0.5, 0.25, 0.2)),
        RoundRecord(3, 40.0, 32.0, 8.0, eval=EvalResult(0.45, 0.3, 0.28)),
    ]


class TestHistoryRows:
    def test_rows_align_with_records(self):
        rows = history_rows(_history())
        assert len(rows) == 4
        assert rows[0]["clean_acc"] is None
        assert rows[2]["clean_acc"] == 0.5
        assert rows[3]["sim_time_s"] == 40.0

    def test_empty_history(self):
        assert history_rows([]) == []


class TestExportCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out" / "history.csv")
        export_csv(_history(), path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 4
        assert rows[2]["pgd_acc"] == "0.25"
        assert rows[0]["clean_acc"] == ""


class TestTimeToAccuracy:
    def test_first_crossing(self):
        assert time_to_accuracy(_history(), 0.5) == 30.0

    def test_unreached_target(self):
        assert time_to_accuracy(_history(), 0.99) is None

    def test_ignores_rounds_without_eval(self):
        assert time_to_accuracy(_history(), 0.0) == 20.0


class TestRunHistorySerialization:
    def test_jsonl_round_trip_is_lossless(self):
        history = RunHistory(_history())
        history.append(
            RoundRecord(4, 50.0, 40.0, 10.0, aborted=True)
        )
        history[3].eval = EvalResult(0.45, 0.3, 0.28, attack_accs={"pgd20": 0.3})
        restored = RunHistory.from_jsonl(history.to_jsonl())
        assert restored == history

    def test_record_dict_round_trip(self):
        for rec in _history():
            assert round_record_from_dict(round_record_to_dict(rec)) == rec

    def test_jsonl_is_one_object_per_line(self):
        text = RunHistory(_history()).to_jsonl()
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("{") for line in lines)

    def test_save_load_round_trip(self, tmp_path):
        history = RunHistory(_history())
        path = str(tmp_path / "out" / "history.jsonl")
        history.save(path)
        assert RunHistory.load(path) == history

    def test_missing_aborted_field_defaults_false(self):
        restored = RunHistory.from_jsonl(
            '{"round": 0, "sim_time_s": 1.0, "compute_s": 0.5, '
            '"access_s": 0.5, "eval": null}\n'
        )
        assert restored[0].aborted is False

    def test_empty_round_trip(self):
        assert RunHistory.from_jsonl(RunHistory().to_jsonl()) == RunHistory()


class TestBestRound:
    def test_best_pgd(self):
        rec = best_round(_history(), "pgd_acc")
        assert rec.round == 3

    def test_best_clean(self):
        rec = best_round(_history(), "clean_acc")
        assert rec.round == 2

    def test_metric_with_none_values(self):
        rec = best_round(_history(), "aa_acc")
        assert rec.round == 3

    def test_empty(self):
        assert best_round([], "pgd_acc") is None


class TestAbortedRoundHistory:
    """History round-trips for runs the fault plan actually degraded."""

    @staticmethod
    def _run(**overrides):
        from repro.baselines import JointFAT
        from repro.data import make_cifar10_like
        from repro.flsim import FaultPlan, FLConfig
        from repro.hardware import DeviceSampler, device_pool
        from repro.models import build_cnn

        task = make_cifar10_like(
            image_size=8, train_per_class=20, test_per_class=10, seed=0
        )
        cfg = FLConfig(
            num_clients=5, clients_per_round=3, local_iters=2, batch_size=8,
            lr=0.02, rounds=4, train_pgd_steps=2, eval_pgd_steps=2,
            eval_every=0, eval_max_samples=24, seed=0,
            fault_plan=FaultPlan(seed=0, dropout_prob=0.6),
            min_clients_per_round=2,
            **overrides,
        )
        builder = lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)
        sampler = DeviceSampler(device_pool("cifar10"), "unbalanced")
        return JointFAT(task, builder, cfg, device_sampler=sampler)

    def test_aborted_rounds_survive_save_load(self, tmp_path):
        exp = self._run()
        exp.run()
        exp.close()
        history = RunHistory(exp.history)
        aborted = [r.round for r in history if r.aborted]
        assert aborted, "fault plan produced no aborted round; weaken the test config"
        path = str(tmp_path / "history.jsonl")
        history.save(path)
        restored = RunHistory.load(path)
        assert restored == history
        assert [r.round for r in restored if r.aborted] == aborted

    def test_sim_time_monotone_through_aborts(self):
        exp = self._run()
        exp.run()
        exp.close()
        times = [r.sim_time_s for r in exp.history]
        assert times == sorted(times)
        # An aborted round never rolls the clock back; with no
        # client_timeout configured the server waits zero seconds, so the
        # clock may stand still but must not regress.
        by_round = {r.round: r for r in exp.history}
        for r in exp.history:
            if r.aborted and r.round > 0:
                assert r.sim_time_s >= by_round[r.round - 1].sim_time_s

    def test_sim_time_monotone_across_checkpoint_resume(self, tmp_path):
        ref = self._run()
        ref.run()
        ref.close()

        path = str(tmp_path / "run.jsonl")
        interrupted = self._run(journal_path=path, checkpoint_every=2)
        interrupted.run(rounds=2)
        interrupted.close()
        resumed = self._run(journal_path=path, checkpoint_every=2)
        resumed.resume(path)
        resumed.close()

        assert RunHistory(resumed.history) == RunHistory(ref.history)
        times = [r.sim_time_s for r in resumed.history]
        assert times == sorted(times)
        assert [r.aborted for r in resumed.history] == [
            r.aborted for r in ref.history
        ]
