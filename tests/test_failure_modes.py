"""Failure injection: wrong shapes, NaNs, and corrupted state must fail
loudly (or be handled) rather than silently corrupting training."""

import numpy as np
import pytest

from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.data import ArrayDataset
from repro.flsim.aggregation import weighted_average_states
from repro.models import build_cnn
from repro.nn import CrossEntropyLoss, Linear, Sequential, ReLU

RNG = np.random.default_rng(0)


class TestShapeMismatches:
    def test_load_state_dict_shape_mismatch_raises(self):
        m = Sequential(Linear(4, 3))
        bad = {k: np.zeros((9, 9)) for k in m.state_dict()}
        with pytest.raises(ValueError):
            m.load_state_dict(bad)

    def test_aggregating_mismatched_states_raises(self):
        s1 = {"w": np.zeros(3)}
        s2 = {"w": np.zeros(4)}
        with pytest.raises(ValueError):
            weighted_average_states([s1, s2], [1.0, 1.0])

    def test_model_rejects_wrong_input_channels(self):
        model = build_cnn(2, 4, (3, 8, 8), base_channels=4, rng=RNG)
        with pytest.raises(ValueError):
            model(np.zeros((1, 5, 8, 8)))

    def test_dataset_subset_out_of_range(self):
        ds = ArrayDataset(np.zeros((3, 2)), np.zeros(3, dtype=int))
        with pytest.raises(IndexError):
            ds.subset([0, 7])


class TestNumericalRobustness:
    def test_cross_entropy_with_huge_logits(self):
        ce = CrossEntropyLoss()
        loss = ce(np.array([[1e308, -1e308, 0.0]]), np.array([0]))
        assert np.isfinite(loss)
        assert np.isfinite(ce.backward()).all()

    def test_pgd_on_constant_model_is_bounded(self):
        """A model with zero gradients must not produce NaN perturbations."""

        class Constant:
            def __call__(self, x):
                self._n = len(x)
                return np.zeros((len(x), 3))

            def forward(self, x):
                return self(x)

            def backward(self, g):
                return np.zeros((self._n, 4))

        mwl = ModelWithLoss(Constant())
        x = RNG.uniform(size=(2, 4))
        adv = pgd_attack(mwl, x, np.array([0, 1]), PGDConfig(eps=0.1, steps=3), rng=RNG)
        assert np.isfinite(adv).all()
        assert np.all(np.abs(adv - x) <= 0.1 + 1e-12)

    def test_zero_variance_batchnorm_stable(self):
        from repro.nn import BatchNorm2d

        bn = BatchNorm2d(2)
        bn.train()
        out = bn(np.ones((4, 2, 3, 3)))
        assert np.isfinite(out).all()
        g = bn.backward(np.ones_like(out))
        assert np.isfinite(g).all()

    def test_relu_dead_everywhere_backward_zero(self):
        relu = ReLU()
        out = relu(-np.ones((2, 3)))
        g = relu.backward(np.ones_like(out))
        np.testing.assert_array_equal(g, np.zeros_like(g))


class TestEmptyAndDegenerate:
    def test_single_sample_dataset_trains(self):
        from repro.flsim.local import standard_local_train

        model = Sequential(Linear(4, 2))
        ds = ArrayDataset(RNG.uniform(size=(1, 4)), np.array([1]))
        loss = standard_local_train(model, ds, iterations=3, batch_size=8, lr=0.1)
        assert np.isfinite(loss)

    def test_zero_iterations_is_noop(self):
        from repro.flsim.local import standard_local_train

        model = Sequential(Linear(4, 2))
        before = model.state_dict()
        ds = ArrayDataset(RNG.uniform(size=(4, 4)), np.array([0, 1, 0, 1]))
        loss = standard_local_train(model, ds, iterations=0, batch_size=2, lr=0.1)
        assert loss == 0.0
        for k, v in model.state_dict().items():
            np.testing.assert_array_equal(v, before[k])

    def test_partition_more_clients_than_samples(self):
        from repro.data.partition import iid_partition

        shards = iid_partition(np.arange(3) % 2, 5)
        assert len(shards) == 5
        assert sum(len(s) for s in shards) == 3
