"""Client-batched execution backend: slab kernels and cohort fusion.

Two layers of guarantees, both **bit-exact** (``np.array_equal``, not
allclose — determinism is the contract, not a tolerance):

* kernel level: a cohort-aware layer with K client slabs installed must
  reproduce K independent serial layers exactly — forward outputs, input
  gradients, parameter-gradient slabs, and BatchNorm running-statistic
  slabs — because the stacked GEMMs run the same BLAS kernel over the
  same contiguous per-client layout and every multi-axis reduction runs
  per client slice;
* round level: a federated run on ``executor_backend="batched"`` must be
  bit-identical to the serial reference at any fusion width, for sync
  and cross-round-pipelined async aggregation, with fault and threat
  plans active, across homogeneous (jFAT, FedRBN) and
  identical-mask-grouped heterogeneous (HeteroFL) baselines.
"""

import numpy as np
import pytest

from repro.baselines import FedRBN, HeteroFLAT, JointFAT
from repro.core.prefix_cache import PrefixCache
from repro.data import make_cifar10_like
from repro.flsim import FLConfig
from repro.flsim.executor import CohortFn, RoundExecutor
from repro.flsim.faults import FaultPlan
from repro.flsim.threats import ThreatPlan
from repro.hardware import DEVICE_POOL_CIFAR10, DeviceSampler
from repro.models import build_cnn, build_vgg
from repro.nn import BatchNorm2d, Conv2d, DualBatchNorm2d, Linear
from repro.nn.cohort import (
    CohortCrossEntropyLoss,
    clear_cohort,
    extract_cohort,
    install_cohort,
)
from repro.nn.losses import CrossEntropyLoss


def _assert_states_equal(a, b, label=""):
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k], err_msg=f"{label}{k}")


# ---------------------------------------------------------------------------
# Kernel-level slab semantics: stacked layer == K serial layers, bit for bit
# ---------------------------------------------------------------------------


def _clone_layers(make_layer, k):
    """K serial layers with distinct weights + one cohort layer over them."""
    serial = [make_layer(np.random.default_rng(10 + i)) for i in range(k)]
    cohort = make_layer(np.random.default_rng(0))
    install_cohort(cohort, [layer.state_dict() for layer in serial])
    return serial, cohort


def _layer_case(make_layer, x_shape, k=3, b=4, train=True):
    rng = np.random.default_rng(99)
    serial, cohort = _clone_layers(make_layer, k)
    xs = [rng.normal(size=(b,) + x_shape).astype(np.float32) for _ in range(k)]
    for layer in serial + [cohort]:
        layer.train() if train else layer.eval()

    outs = [layer.forward(x) for layer, x in zip(serial, xs)]
    stacked_out = cohort.forward(np.concatenate(xs))
    np.testing.assert_array_equal(stacked_out, np.concatenate(outs))

    gs = [rng.normal(size=out.shape).astype(np.float32) for out in outs]
    gx = [layer.backward(g) for layer, g in zip(serial, gs)]
    stacked_gx = cohort.backward(np.concatenate(gs))
    np.testing.assert_array_equal(stacked_gx, np.concatenate(gx))

    for (name, p_cohort) in cohort.named_parameters():
        for i, layer in enumerate(serial):
            p_serial = dict(layer.named_parameters())[name]
            np.testing.assert_array_equal(
                p_cohort.slab_grad[i], p_serial.grad, err_msg=f"{name}[{i}]"
            )
    # Buffers (BN running stats) updated per client slice.
    trained = extract_cohort(cohort)
    for i, layer in enumerate(serial):
        _assert_states_equal(layer.state_dict(), trained[i], f"client {i}: ")


class TestSlabKernels:
    def test_linear(self):
        _layer_case(lambda rng: Linear(6, 5, rng=rng), (6,))

    def test_linear_no_bias(self):
        _layer_case(lambda rng: Linear(6, 5, bias=False, rng=rng), (6,))

    def test_conv2d(self):
        _layer_case(
            lambda rng: Conv2d(3, 4, kernel_size=3, padding=1, rng=rng), (3, 6, 6)
        )

    def test_conv2d_strided(self):
        _layer_case(
            lambda rng: Conv2d(3, 4, kernel_size=3, stride=2, rng=rng), (3, 7, 7)
        )

    def test_batchnorm_train(self):
        _layer_case(lambda rng: BatchNorm2d(3), (3, 5, 5))

    def test_batchnorm_eval(self):
        _layer_case(lambda rng: BatchNorm2d(3), (3, 5, 5), train=False)

    def test_dual_batchnorm_both_banks(self):
        for adversarial in (False, True):
            def make(rng, adv=adversarial):
                layer = DualBatchNorm2d(3)
                layer.set_mode(adv)
                return layer

            _layer_case(make, (3, 5, 5))

    def test_whole_model_forward_backward(self):
        k, b = 3, 4
        serial, cohort = _clone_layers(
            lambda rng: build_cnn(2, 10, (3, 8, 8), base_channels=4, rng=rng), k
        )
        rng = np.random.default_rng(5)
        xs = [rng.normal(size=(b, 3, 8, 8)).astype(np.float32) for _ in range(k)]
        for m in serial + [cohort]:
            m.train()
        outs = [m(x) for m, x in zip(serial, xs)]
        np.testing.assert_array_equal(
            cohort(np.concatenate(xs)), np.concatenate(outs)
        )

    def test_extract_roundtrips_install(self):
        model = build_cnn(2, 10, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))
        states = [
            build_cnn(2, 10, (3, 8, 8), base_channels=4,
                      rng=np.random.default_rng(i)).state_dict()
            for i in (2, 3)
        ]
        install_cohort(model, states)
        for got, want in zip(extract_cohort(model), states):
            _assert_states_equal(got, want)
        clear_cohort(model)
        assert model._cohort_k == 0
        with pytest.raises(RuntimeError):
            extract_cohort(model)

    def test_clear_restores_serial_path(self):
        model = build_cnn(2, 10, (3, 8, 8), base_channels=4, rng=np.random.default_rng(1))
        model.eval()
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8)).astype(np.float32)
        before = model(x)
        install_cohort(model, [model.state_dict()] * 2)
        clear_cohort(model)
        np.testing.assert_array_equal(model(x), before)


class TestCohortCrossEntropy:
    def test_matches_serial_loss_and_grad(self):
        k, b, c = 3, 5, 7
        rng = np.random.default_rng(2)
        logits = [rng.normal(size=(b, c)).astype(np.float32) for _ in range(k)]
        labels = [rng.integers(0, c, size=b) for _ in range(k)]
        serial = [CrossEntropyLoss() for _ in range(k)]
        losses = [ce(lg, y) for ce, lg, y in zip(serial, logits, labels)]
        grads = [ce.backward() for ce in serial]

        cohort = CohortCrossEntropyLoss(k)
        stacked = cohort(np.concatenate(logits), np.concatenate(labels))
        np.testing.assert_array_equal(stacked, np.array(losses))
        np.testing.assert_array_equal(cohort.backward(), np.concatenate(grads))

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            CohortCrossEntropyLoss(0)


# ---------------------------------------------------------------------------
# Cohort planning and the CohortFn contract
# ---------------------------------------------------------------------------


class TestCohortPlanning:
    def test_groups_chunked_to_fusion_width(self):
        ex = RoundExecutor("batched", max_workers=1, fusion_width=4)
        fn = CohortFn(lambda i, s: i, lambda it, s: it, group_key=lambda i: "g")
        assert ex.plan_cohorts(fn, list(range(6))) == [[0, 1, 2, 3], [4, 5]]

    def test_none_keys_stay_singletons(self):
        ex = RoundExecutor("batched", max_workers=1, fusion_width=4)
        fn = CohortFn(
            lambda i, s: i, lambda it, s: it,
            group_key=lambda i: None if i % 2 else "g",
        )
        plan = ex.plan_cohorts(fn, list(range(5)))
        assert [0, 2, 4] in plan
        assert [1] in plan and [3] in plan

    def test_distinct_keys_never_fuse(self):
        ex = RoundExecutor("batched", max_workers=1, fusion_width=4)
        fn = CohortFn(lambda i, s: i, lambda it, s: it, group_key=lambda i: i % 2)
        assert sorted(ex.plan_cohorts(fn, list(range(4)))) == [[0, 2], [1, 3]]

    def test_fusion_width_one_disables_fusion(self):
        ex = RoundExecutor("batched", max_workers=1, fusion_width=1)
        fn = CohortFn(lambda i, s: i, lambda it, s: it, group_key=lambda i: "g")
        assert ex.plan_cohorts(fn, list(range(3))) == [[0], [1], [2]]

    def test_plain_fn_on_batched_backend(self):
        # A baseline without a cohort path still runs (per item).
        ex = RoundExecutor("batched", max_workers=1, fusion_width=4)
        assert ex.map(lambda i, s: i * i, list(range(5))) == [0, 1, 4, 9, 16]

    def test_map_preserves_item_order(self):
        ex = RoundExecutor("batched", max_workers=1, fusion_width=3)
        fn = CohortFn(
            lambda i, s: ("item", i),
            lambda items, s: [("cohort", i) for i in items],
            group_key=lambda i: None if i in (1, 4) else "g",
        )
        out = ex.map(fn, list(range(6)))
        assert [v[1] for v in out] == list(range(6))
        assert out[1][0] == "item" and out[4][0] == "item"
        assert out[0][0] == "cohort"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FLConfig(fusion_width=0)
        with pytest.raises(ValueError):
            RoundExecutor("batched", fusion_width=0)


class TestPrefixCacheStacked:
    def test_fetch_stacked_matches_serial_fetch(self):
        calls = []

        def forward(x):
            calls.append(len(x))
            return x * 2.0

        rng = np.random.default_rng(0)
        data = [rng.normal(size=(8, 3)).astype(np.float32) for _ in range(3)]

        serial = PrefixCache()
        serial_out = []
        for cid, x in enumerate(data):
            serial.fetch(("c", cid), np.arange(4), x[:4], forward, 8)
            serial_out.append(
                serial.fetch(("c", cid), np.arange(2, 8), x[2:8], forward, 8)
            )

        calls.clear()
        stacked = PrefixCache()
        stacked.fetch_stacked(
            [("c", cid) for cid in range(3)],
            [np.arange(4)] * 3,
            [x[:4] for x in data],
            forward,
            [8] * 3,
        )
        assert calls == [12]  # one fused forward over the 3 clients' misses
        out = stacked.fetch_stacked(
            [("c", cid) for cid in range(3)],
            [np.arange(2, 8)] * 3,
            [x[2:8] for x in data],
            forward,
            [8] * 3,
        )
        assert calls == [12, 12]  # rows 2-3 hit, rows 4-7 fused again
        for got, want in zip(out, serial_out):
            np.testing.assert_array_equal(got, want)
        assert stacked.stats()["hits"] == serial.stats()["hits"]
        assert stacked.stats()["misses"] == serial.stats()["misses"]


# ---------------------------------------------------------------------------
# Round-level bit-identity: batched == serial across baselines and modes
# ---------------------------------------------------------------------------


def _task():
    return make_cifar10_like(image_size=8, train_per_class=20, test_per_class=5, seed=0)


BASELINES = {
    "jfat": (
        JointFAT,
        lambda rng: build_vgg("vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng),
    ),
    "fedrbn": (
        FedRBN,
        lambda rng: build_vgg(
            "vgg11", 10, (3, 8, 8), width_mult=0.25, rng=rng, bn_cls=DualBatchNorm2d
        ),
    ),
    "heterofl": (
        HeteroFLAT,
        lambda rng: build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng),
    ),
}


def _run(name, backend, fusion_width=1, heterogeneity="balanced", **overrides):
    cls, builder = BASELINES[name]
    defaults = dict(
        num_clients=6, clients_per_round=5, local_iters=2, batch_size=8,
        lr=0.02, rounds=2, train_pgd_steps=2, eval_every=0,
        eval_pgd_steps=2, seed=0,
        executor_backend=backend, round_parallelism=2,
        fusion_width=fusion_width,
    )
    defaults.update(overrides)
    sampler = DeviceSampler(DEVICE_POOL_CIFAR10, heterogeneity)
    exp = cls(_task(), builder, FLConfig(**defaults), device_sampler=sampler)
    exp.run()
    state = {k: v.copy() for k, v in exp.global_model.state_dict().items()}
    history = [(r.round, r.sim_time_s, r.compute_s, r.aborted) for r in exp.history]
    log = list(exp.async_log)
    exp.close()
    return state, history, log


class TestBatchedBackendDeterminism:
    # clients_per_round=5 with equal shards gives one ragged cohort at
    # width 2 (2+2+1) and width 4 (4+1) — the planner's tail chunks.
    @pytest.mark.parametrize("name", sorted(BASELINES))
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_sync_matches_serial(self, name, width):
        ref = _run(name, "serial")
        got = _run(name, "batched", fusion_width=width)
        _assert_states_equal(ref[0], got[0], f"{name} w{width}: ")
        assert ref[1] == got[1]

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_async_pipeline_depth2_matches_serial(self, name):
        kw = dict(
            rounds=3, aggregation_mode="async", max_staleness=2,
            pipeline_depth=2, heterogeneity="unbalanced",
        )
        ref = _run(name, "serial", **kw)
        got = _run(name, "batched", fusion_width=4, **kw)
        _assert_states_equal(ref[0], got[0], f"{name} async: ")
        assert ref[2] == got[2]

    def test_sync_with_fault_and_threat_plans(self):
        kw = dict(
            rounds=3,
            fault_plan=FaultPlan(seed=3, dropout_prob=0.2, straggler_prob=0.2),
            threat_plan=ThreatPlan(seed=7, byzantine_prob=0.3, attack="sign_flip"),
            aggregation_rule="trimmed_mean", trim_ratio=0.2,
        )
        ref = _run("jfat", "serial", **kw)
        got = _run("jfat", "batched", fusion_width=4, **kw)
        _assert_states_equal(ref[0], got[0], "faults+threats: ")
        assert ref[1] == got[1]

    def test_unbalanced_fedrbn_mixes_cohort_kinds(self):
        # Unbalanced devices split FedRBN clients between the AT and
        # standard-training branches; the fusion key separates them.
        ref = _run("fedrbn", "serial", heterogeneity="unbalanced")
        got = _run("fedrbn", "batched", fusion_width=4, heterogeneity="unbalanced")
        _assert_states_equal(ref[0], got[0], "fedrbn unbalanced: ")


class TestDescribeParallelism:
    def _exp(self, **overrides):
        cls, builder = BASELINES["jfat"]
        defaults = dict(
            num_clients=4, clients_per_round=2, local_iters=1, batch_size=8,
            lr=0.02, rounds=1, train_pgd_steps=1, eval_every=0,
            eval_pgd_steps=1, seed=0,
        )
        defaults.update(overrides)
        return cls(_task(), builder, FLConfig(**defaults))

    def test_reports_backend_workers_and_fusion(self):
        exp = self._exp(
            executor_backend="batched", round_parallelism=2, fusion_width=3
        )
        text = exp.describe_parallelism()
        exp.close()
        assert "batched x2" in text
        assert "fusion width 3" in text

    def test_non_batched_backend_omits_fusion(self):
        exp = self._exp(executor_backend="thread", round_parallelism=2)
        text = exp.describe_parallelism()
        exp.close()
        assert "thread x2" in text
        assert "fusion width" not in text
