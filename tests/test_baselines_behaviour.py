"""Behavioural tests distinguishing the baselines' mechanisms."""

import numpy as np
import pytest

from repro.baselines import FedDFAT, FedRBN, JointFAT
from repro.baselines.distill import ensemble_soft_targets
from repro.data import make_cifar10_like
from repro.flsim import FLConfig
from repro.hardware import Device, DeviceState
from repro.models import build_cnn, build_vgg
from repro.nn import DualBatchNorm2d
from repro.nn.normalization import set_dual_bn_mode

SHAPE = (3, 8, 8)


def _task():
    return make_cifar10_like(image_size=8, train_per_class=15, test_per_class=5, seed=0)


def _cfg(**overrides):
    defaults = dict(
        num_clients=4, clients_per_round=2, local_iters=1, batch_size=8,
        rounds=1, train_pgd_steps=1, eval_every=0, seed=0,
    )
    defaults.update(overrides)
    return FLConfig(**defaults)


class TestConfidenceWeighting:
    def test_confident_teacher_dominates(self):
        """FedET's rule: a teacher with near-one-hot output pulls the
        ensemble target toward its prediction more than a uniform one."""

        class FixedTeacher:
            def __init__(self, logits):
                self._logits = np.asarray(logits, dtype=float)

            def eval(self):
                pass

            def __call__(self, x):
                return np.tile(self._logits, (len(x), 1))

        confident = FixedTeacher([10.0, 0.0, 0.0])
        uniform = FixedTeacher([0.0, 0.0, 0.0])
        x = np.zeros((2, 4))
        mean_t = ensemble_soft_targets([confident, uniform], x, confidence_weighted=False)
        conf_t = ensemble_soft_targets([confident, uniform], x, confidence_weighted=True)
        # confidence weighting pushes class-0 mass above the plain mean
        assert conf_t[0, 0] > mean_t[0, 0]

    def test_explicit_weights(self):
        class FixedTeacher:
            def __init__(self, logits):
                self._logits = np.asarray(logits, dtype=float)

            def eval(self):
                pass

            def __call__(self, x):
                return np.tile(self._logits, (len(x), 1))

        a = FixedTeacher([5.0, 0.0])
        b = FixedTeacher([0.0, 5.0])
        x = np.zeros((1, 3))
        t = ensemble_soft_targets([a, b], x, weights=[3.0, 1.0])
        assert t[0, 0] > t[0, 1]


class TestFedRBNMechanism:
    def _dual_builder(self, rng):
        return build_vgg("vgg11", 10, SHAPE, width_mult=0.125, rng=rng, bn_cls=DualBatchNorm2d)

    def test_poor_clients_do_standard_training(self):
        exp = FedRBN(_task(), self._dual_builder, _cfg())
        poor = DeviceState(Device("p", 1.0, 1, 1), avail_mem_bytes=1.0, avail_perf_flops=1e9)
        rich = DeviceState(
            Device("r", 1.0, 1, 1), avail_mem_bytes=1e12, avail_perf_flops=1e9
        )
        assert not exp.can_afford_at(poor)
        assert exp.can_afford_at(rich)

    def test_st_cost_cheaper_than_at(self):
        exp = FedRBN(_task(), self._dual_builder, _cfg(train_pgd_steps=5))
        state = DeviceState(
            Device("r", 1.0, 1, 1), avail_mem_bytes=1e12, avail_perf_flops=1e9
        )
        at = exp._cost(state, is_at=True)
        st = exp._cost(state, is_at=False)
        assert st.compute_s < at.compute_s

    def test_adv_stat_keys_discovered(self):
        exp = FedRBN(_task(), self._dual_builder, _cfg())
        assert exp._adv_stat_keys
        assert all(k.endswith("_adv") for k in exp._adv_stat_keys)

    def test_dual_bn_eval_kwargs_reach_every_eval_slot(self):
        """FedRBN evaluates with *adversarial* BN statistics on all backends.

        The dual-BN switch is a module attribute, invisible to the
        state-dict sync that prepares thread replicas — it must travel
        through the eval plan's slot-setup hook.  Verifies (a) parallel
        evaluation is bit-identical to serial, (b) every replica that
        evaluated was flipped to adversarial mode, and (c) the kwarg is
        load-bearing: clean-statistics evaluation differs.
        """

        def build(eval_backend):
            exp = FedRBN(
                _task(), self._dual_builder,
                _cfg(rounds=2, local_iters=2, train_pgd_steps=2,
                     eval_backend=eval_backend, eval_parallelism=2),
            )
            exp.run()
            return exp

        serial, threaded = build("serial"), build("thread")
        res_serial = serial.evaluate(max_samples=16)
        res_thread = threaded.evaluate(max_samples=16)
        assert res_serial.clean_acc == res_thread.clean_acc
        assert res_serial.pgd_acc == res_thread.pgd_acc

        # every slot model the threaded eval touched is in adversarial mode
        models = [threaded.global_model] + list(threaded._slot_models.values())
        assert len(models) > 1, "thread eval should have built replicas"
        for model in models:
            flags = [
                m.adversarial_mode
                for m in model.modules()
                if isinstance(m, DualBatchNorm2d)
            ]
            assert flags and all(flags)

        # the switch is load-bearing: the two statistic banks diverged under
        # AT, so the evaluated function differs between modes
        x = threaded.task.test.x[:8]
        set_dual_bn_mode(threaded.global_model, adversarial=True)
        adv_logits = threaded.global_model(x)
        set_dual_bn_mode(threaded.global_model, adversarial=False)
        clean_logits = threaded.global_model(x)
        set_dual_bn_mode(threaded.global_model, adversarial=True)
        assert not np.allclose(adv_logits, clean_logits)


class TestKDArchitectureRouting:
    def test_each_client_trains_largest_affordable(self):
        families = {
            "cnn2": lambda rng: build_cnn(2, 10, SHAPE, base_channels=4, rng=rng),
            "vgg11": lambda rng: build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng),
        }
        exp = FedDFAT(_task(), families, _cfg(), distill_iters=1)
        small_mem = exp.mem_req["cnn2"]
        between = DeviceState(
            Device("m", 1.0, 1, 1),
            avail_mem_bytes=(small_mem + exp.mem_req["vgg11"]) / 2,
            avail_perf_flops=1e9,
        )
        assert exp.pick_architecture(between) == "cnn2"

    def test_global_model_is_family_largest(self):
        families = {
            "cnn2": lambda rng: build_cnn(2, 10, SHAPE, base_channels=4, rng=rng),
            "vgg11": lambda rng: build_vgg("vgg11", 10, SHAPE, width_mult=0.25, rng=rng),
        }
        exp = FedDFAT(_task(), families, _cfg(), distill_iters=1)
        assert exp.global_model is exp.prototypes["vgg11"]


class TestJFATAggregation:
    def test_round_is_fedavg_of_locals(self):
        """With one client, the aggregated global equals that client's
        trained local model exactly."""
        task = _task()
        cfg = _cfg(num_clients=2, clients_per_round=1)
        builder = lambda rng: build_cnn(2, 10, SHAPE, base_channels=4, rng=rng)
        exp = JointFAT(task, builder, cfg)
        exp.run()
        # smoke property: FedAvg of a single state is that state (exercised
        # implicitly); weights must have moved from init
        init = builder(np.random.default_rng(cfg.seed + 7)).state_dict()
        moved = any(
            not np.allclose(init[k], v) for k, v in exp.global_model.state_dict().items()
        )
        assert moved
