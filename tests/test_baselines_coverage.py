"""Coverage semantics distinguishing the partial-training strategies.

HeteroFL's static slices never touch the tail channels; FedRolex's rolling
window provably covers every channel across a full cycle; FedDropout
covers everything in expectation.  These are the mechanisms behind their
different Table 2 accuracies, so we pin them down as tests.
"""

import numpy as np
import pytest

from repro.baselines.subnet import extract_submodel
from repro.models import build_cnn, build_vgg

RNG = np.random.default_rng(0)


def _model():
    return build_vgg("vgg11", 10, (3, 16, 16), width_mult=0.5, rng=np.random.default_rng(1))


def _covered_out_channels(model, strategy, rounds, ratio=0.5, key_suffix="conv.weight"):
    covered = set()
    key = None
    for t in range(rounds):
        piece = extract_submodel(
            model, ratio, strategy, round_idx=t, rng=np.random.default_rng(100 + t)
        )
        if key is None:
            key = next(k for k in piece.index_map if k.endswith(key_suffix))
        covered.update(piece.index_map[key][0].tolist())
    total = model.state_dict()[key].shape[0]
    return covered, total


class TestCoverage:
    def test_static_never_covers_tail(self):
        model = _model()
        covered, total = _covered_out_channels(model, "static", rounds=10)
        assert covered == set(range(total // 2))

    def test_rolling_covers_everything_over_a_cycle(self):
        model = _model()
        covered, total = _covered_out_channels(model, "rolling", rounds=2 * 32)
        assert covered == set(range(total))

    def test_random_covers_everything_whp(self):
        model = _model()
        covered, total = _covered_out_channels(model, "random", rounds=30)
        # with keep=total/2 per round, P(miss after 30 rounds) ~ 2^-30
        assert covered == set(range(total))

    def test_rolling_deterministic_per_round(self):
        model = _model()
        a = extract_submodel(model, 0.5, "rolling", round_idx=7)
        b = extract_submodel(model, 0.5, "rolling", round_idx=7)
        key = next(k for k in a.index_map if k.endswith("conv.weight"))
        np.testing.assert_array_equal(a.index_map[key][0], b.index_map[key][0])

    def test_random_differs_across_clients(self):
        model = _model()
        a = extract_submodel(model, 0.5, "random", rng=np.random.default_rng(1))
        b = extract_submodel(model, 0.5, "random", rng=np.random.default_rng(2))
        key = next(k for k in a.index_map if k.endswith("conv.weight"))
        assert not np.array_equal(a.index_map[key][0], b.index_map[key][0])


class TestSubmodelConsistency:
    @pytest.mark.parametrize("strategy", ["static", "random", "rolling"])
    def test_input_output_channel_chaining(self, strategy):
        """Layer i+1's input indices must equal layer i's output indices —
        otherwise the sliced forward would mix mismatched channels."""
        model = build_cnn(3, 10, (3, 16, 16), base_channels=8, rng=np.random.default_rng(3))
        piece = extract_submodel(model, 0.5, strategy, round_idx=2, rng=RNG)
        # atom0 conv out channels feed atom1 conv in channels
        k0 = "atom0.layer0.conv.weight"
        k1 = "atom1.layer0.conv.weight"
        if k0 in piece.index_map and k1 in piece.index_map:
            out0 = piece.index_map[k0][0]
            in1 = piece.index_map[k1][1]
            np.testing.assert_array_equal(np.sort(out0), np.sort(in1))

    @pytest.mark.parametrize("strategy", ["static", "rolling"])
    def test_bn_indices_match_conv_out(self, strategy):
        model = _model()
        piece = extract_submodel(model, 0.5, strategy, round_idx=1, rng=RNG)
        conv_key = "atom0.layer0.conv.weight"
        bn_key = "atom0.layer0.bn.weight"
        np.testing.assert_array_equal(
            piece.index_map[conv_key][0], piece.index_map[bn_key][0]
        )
