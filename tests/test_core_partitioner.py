"""Tests for the memory-constrained model partitioner (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.partitioner import (
    Partition,
    aux_head_bytes,
    full_model_mem_bytes,
    partition_model,
    partition_summary,
    segment_mem_bytes,
)
from repro.hardware.memory import MemoryModel
from repro.models import build_model, build_vgg

RNG = np.random.default_rng(0)
MEM = MemoryModel(batch_size=16)


def _model():
    return build_vgg("vgg11", 10, (3, 16, 16), width_mult=0.25, rng=RNG)


class TestPartitionModel:
    def test_ranges_cover_all_atoms_contiguously(self):
        model = _model()
        r_max = full_model_mem_bytes(model, MEM)
        part = partition_model(model, 0.3 * r_max, MEM)
        assert part.ranges[0][0] == 0
        assert part.ranges[-1][1] == len(model.atoms)
        for (a, b), (c, d) in zip(part.ranges, part.ranges[1:]):
            assert b == c and a < b

    def test_every_module_nonempty(self):
        model = _model()
        part = partition_model(model, 1, MEM)  # tiny budget: one atom per module
        assert all(b - a >= 1 for a, b in part.ranges)
        assert part.num_modules == len(model.atoms)

    def test_generous_budget_single_module(self):
        model = _model()
        r_max = full_model_mem_bytes(model, MEM)
        part = partition_model(model, 10 * r_max, MEM)
        assert part.num_modules == 1

    def test_smaller_rmin_more_modules(self):
        """Fig. 9's x-axis behaviour: #modules decreases with R_min."""
        model = _model()
        r_max = full_model_mem_bytes(model, MEM)
        counts = [
            partition_model(model, frac * r_max, MEM).num_modules
            for frac in (0.1, 0.3, 0.6, 1.1)
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 1

    def test_modules_respect_budget_where_possible(self):
        """Multi-atom modules must fit in R_min (solo oversized atoms may not)."""
        model = _model()
        r_max = full_model_mem_bytes(model, MEM)
        r_min = 0.3 * r_max
        part = partition_model(model, r_min, MEM)
        for a, b in part.ranges:
            if b - a > 1:
                assert segment_mem_bytes(model, a, b, MEM) < r_min

    def test_vgg16_paper_scale_partitions_into_several_modules(self):
        """Paper: R_min = 20% of R_max partitions VGG16 into 7 modules; our
        memory model differs in small constants, so assert the ballpark."""
        model = build_vgg("vgg16", 10, (3, 32, 32), rng=np.random.default_rng(1))
        mem = MemoryModel(batch_size=64)
        r_max = full_model_mem_bytes(model, mem)
        part = partition_model(model, 0.2 * r_max, mem)
        assert 5 <= part.num_modules <= 9

    def test_invalid_rmin(self):
        with pytest.raises(ValueError):
            partition_model(_model(), 0, MEM)


class TestPartitionHelpers:
    def test_module_of_atom(self):
        part = Partition(ranges=((0, 2), (2, 5)))
        assert part.module_of_atom(0) == 0
        assert part.module_of_atom(4) == 1
        with pytest.raises(IndexError):
            part.module_of_atom(5)

    def test_getitem_and_len(self):
        part = Partition(ranges=((0, 2), (2, 5)))
        assert len(part) == 2
        assert part[1] == (2, 5)

    def test_aux_head_bytes_formula(self):
        got = aux_head_bytes(head_in_dim=100, num_classes=10, mem=MEM)
        params = 100 * 10 + 10
        expected = 4 * (params * 3 + 16 * (100 + 10))
        assert got == expected

    def test_segment_mem_additivity_direction(self):
        model = _model()
        one = segment_mem_bytes(model, 0, 1, MEM, include_head=False)
        two = segment_mem_bytes(model, 0, 2, MEM, include_head=False)
        assert two > one

    def test_partition_summary_rows(self):
        model = _model()
        r_max = full_model_mem_bytes(model, MEM)
        part = partition_model(model, 0.4 * r_max, MEM)
        rows = partition_summary(model, part, MEM)
        assert len(rows) == part.num_modules
        assert sum(len(r["atoms"]) for r in rows) == len(model.atoms)
        assert all(r["flops_fwd"] > 0 and r["mem_bytes"] > 0 for r in rows)
