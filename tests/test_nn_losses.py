"""Tests for cross-entropy and the strong-convexity early-exit loss."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, Linear, StrongConvexityLoss, softmax, log_softmax
from repro.nn.losses import accuracy
from tests.helpers import numerical_grad

RNG = np.random.default_rng(7)


def test_softmax_rows_sum_to_one():
    p = softmax(RNG.normal(size=(5, 4)))
    np.testing.assert_allclose(p.sum(axis=1), np.ones(5))
    assert np.all(p >= 0)


def test_softmax_shift_invariance():
    logits = RNG.normal(size=(3, 4))
    np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


def test_log_softmax_matches_log_of_softmax():
    logits = RNG.normal(size=(3, 4))
    np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)


def test_softmax_extreme_logits_stable():
    logits = np.array([[1e4, -1e4, 0.0]])
    p = softmax(logits)
    assert np.isfinite(p).all()
    assert p[0, 0] == pytest.approx(1.0)


def test_cross_entropy_uniform_logits():
    ce = CrossEntropyLoss()
    loss = ce(np.zeros((4, 10)), np.array([0, 3, 5, 9]))
    assert loss == pytest.approx(np.log(10))


def test_cross_entropy_gradient_matches_numeric():
    ce = CrossEntropyLoss()
    logits = RNG.normal(size=(3, 5))
    y = np.array([1, 0, 4])
    ce(logits, y)
    analytic = ce.backward()
    numeric = numerical_grad(lambda: ce(logits, y), logits)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)


def test_cross_entropy_rejects_1d_logits():
    with pytest.raises(ValueError):
        CrossEntropyLoss()(np.zeros(4), np.array([0]))


def test_strong_convexity_loss_reduces_to_ce_when_mu_zero():
    head = Linear(6, 3, rng=RNG)
    feats = RNG.normal(size=(4, 6))
    y = np.array([0, 1, 2, 1])
    scl = StrongConvexityLoss(head, mu=0.0)
    ce = CrossEntropyLoss()
    assert scl(feats, y) == pytest.approx(ce(head(feats), y))


def test_strong_convexity_loss_adds_regularizer():
    head = Linear(6, 3, rng=RNG)
    feats = RNG.normal(size=(4, 6))
    y = np.array([0, 1, 2, 1])
    l0 = StrongConvexityLoss(head, mu=0.0)(feats, y)
    l1 = StrongConvexityLoss(head, mu=2.0)(feats, y)
    expected_reg = 0.5 * 2.0 * (feats**2).sum(axis=1).mean()
    assert l1 - l0 == pytest.approx(expected_reg)


def test_strong_convexity_feature_gradient_matches_numeric():
    head = Linear(5, 3, rng=RNG)
    feats = RNG.normal(size=(2, 5))
    y = np.array([2, 0])
    scl = StrongConvexityLoss(head, mu=0.1)
    scl(feats, y)
    analytic = scl.backward(accumulate_head_grads=False)
    numeric = numerical_grad(lambda: scl(feats, y), feats)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)


def test_strong_convexity_head_grads_accumulate_only_when_asked():
    head = Linear(5, 3, rng=RNG)
    feats = RNG.normal(size=(2, 5))
    y = np.array([2, 0])
    scl = StrongConvexityLoss(head, mu=0.1)
    head.zero_grad()
    scl(feats, y)
    scl.backward(accumulate_head_grads=False)
    assert np.abs(head.weight.grad).sum() == 0
    scl(feats, y)
    scl.backward(accumulate_head_grads=True)
    assert np.abs(head.weight.grad).sum() > 0


def test_strong_convexity_flattens_conv_features():
    head = Linear(12, 3, rng=RNG)
    feats = RNG.normal(size=(2, 3, 2, 2))
    y = np.array([0, 1])
    loss = StrongConvexityLoss(head, mu=0.0)(feats, y)
    assert np.isfinite(loss)


def test_negative_mu_rejected():
    with pytest.raises(ValueError):
        StrongConvexityLoss(Linear(2, 2), mu=-1.0)


def test_accuracy():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
    assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
