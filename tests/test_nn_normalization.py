"""Focused tests for BatchNorm2d and DualBatchNorm2d behaviour."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, DualBatchNorm2d
from repro.nn.normalization import set_dual_bn_mode

RNG = np.random.default_rng(0)


class TestBatchNorm:
    def test_train_output_is_normalised(self):
        bn = BatchNorm2d(4)
        bn.train()
        x = RNG.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.var(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_move_toward_batch(self):
        bn = BatchNorm2d(2, momentum=0.5)
        bn.train()
        x = RNG.normal(loc=5.0, size=(16, 2, 4, 4))
        bn(x)
        assert np.all(bn.running_mean > 1.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn.set_buffer("running_mean", np.array([1.0, -1.0]))
        bn.set_buffer("running_var", np.array([4.0, 0.25]))
        bn.eval()
        x = np.zeros((2, 2, 1, 1))
        out = bn(x)
        np.testing.assert_allclose(out[:, 0], (0 - 1.0) / np.sqrt(4.0 + bn.eps), atol=1e-9)

    def test_eval_mode_does_not_update_stats(self):
        bn = BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(RNG.normal(loc=9.0, size=(4, 2, 3, 3)))
        np.testing.assert_array_equal(bn.running_mean, before)

    def test_affine_params_apply(self):
        bn = BatchNorm2d(1)
        bn.weight.data[...] = 3.0
        bn.bias.data[...] = -2.0
        bn.eval()
        out = bn(np.zeros((1, 1, 2, 2)))
        np.testing.assert_allclose(out, -2.0, atol=1e-9)

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(np.zeros((1, 4, 2, 2)))


class TestDualBatchNorm:
    def test_modes_use_separate_banks(self):
        bn = DualBatchNorm2d(2, momentum=1.0)
        bn.train()
        bn.set_mode(adversarial=False)
        bn(np.full((4, 2, 2, 2), 1.0))
        bn.set_mode(adversarial=True)
        bn(np.full((4, 2, 2, 2), 10.0))
        np.testing.assert_allclose(bn.running_mean, [1.0, 1.0])
        np.testing.assert_allclose(bn.running_mean_adv, [10.0, 10.0])

    def test_eval_respects_active_bank(self):
        bn = DualBatchNorm2d(1)
        bn.set_buffer("running_mean", np.array([0.0]))
        bn.set_buffer("running_var", np.array([1.0]))
        bn.set_buffer("running_mean_adv", np.array([5.0]))
        bn.set_buffer("running_var_adv", np.array([1.0]))
        bn.eval()
        x = np.zeros((1, 1, 1, 1))
        bn.set_mode(adversarial=False)
        clean_out = bn(x)[0, 0, 0, 0]
        bn.set_mode(adversarial=True)
        adv_out = bn(x)[0, 0, 0, 0]
        assert adv_out < clean_out  # adv bank has higher mean

    def test_state_dict_includes_both_banks(self):
        bn = DualBatchNorm2d(2)
        keys = set()
        for name, _ in bn.named_buffers():
            keys.add(name)
        assert keys == {
            "running_mean", "running_var", "running_mean_adv", "running_var_adv"
        }

    def test_set_dual_bn_mode_helper_ignores_plain_bn(self):
        from repro.nn import Sequential

        model = Sequential(BatchNorm2d(2), DualBatchNorm2d(2))
        set_dual_bn_mode(model, True)
        assert model.layers[1].adversarial_mode
        assert not hasattr(model.layers[0], "adversarial_mode") or not isinstance(
            model.layers[0], DualBatchNorm2d
        )
