"""Architecture-variant tests: all zoo members build, run, and backprop."""

import numpy as np
import pytest

from repro.hardware import profile_module
from repro.models import build_model
from repro.nn import CrossEntropyLoss

RNG = np.random.default_rng(0)

VARIANTS = [
    ("vgg11", (3, 16, 16), 0.25),
    ("vgg13", (3, 16, 16), 0.25),
    ("vgg16", (3, 16, 16), 0.25),
    ("resnet10", (3, 16, 16), 0.25),
    ("resnet18", (3, 16, 16), 0.25),
    ("resnet34", (3, 16, 16), 0.125),
    ("cnn3", (3, 16, 16), 1.0),
    ("cnn4", (3, 16, 16), 1.0),
]


@pytest.mark.parametrize("name,shape,wm", VARIANTS)
class TestAllVariants:
    def test_forward_backward_roundtrip(self, name, shape, wm):
        model = build_model(name, 7, shape, width_mult=wm, rng=RNG)
        model.train()
        x = RNG.uniform(size=(2,) + shape)
        out = model(x)
        assert out.shape == (2, 7)
        ce = CrossEntropyLoss()
        ce(out, np.array([0, 3]))
        g = model.backward(ce.backward())
        assert g.shape == x.shape
        assert np.isfinite(g).all()

    def test_profile_matches_forward_shape(self, name, shape, wm):
        model = build_model(name, 7, shape, width_mult=wm, rng=RNG)
        prof = profile_module(model, shape)
        model.eval()
        out = model(np.zeros((1,) + shape))
        assert prof.out_shape == tuple(out.shape[1:])
        assert prof.params == model.num_parameters()

    def test_atom_chain_shapes_consistent(self, name, shape, wm):
        model = build_model(name, 7, shape, width_mult=wm, rng=RNG)
        # feature_shape(i) must chain: atom i+1 consumes atom i's output
        model.eval()
        x = np.zeros((1,) + shape)
        for i, atom in enumerate(model.atoms):
            x = atom.module(x)
            assert tuple(x.shape[1:]) == model.feature_shape(i)


class TestDepthOrdering:
    def test_deeper_vgg_more_params(self):
        p = {}
        for arch in ("vgg11", "vgg13", "vgg16"):
            p[arch] = build_model(arch, 10, (3, 32, 32), width_mult=0.25, rng=RNG).num_parameters()
        assert p["vgg11"] < p["vgg13"] < p["vgg16"]

    def test_deeper_resnet_more_params(self):
        p = {}
        for arch in ("resnet10", "resnet18", "resnet34"):
            p[arch] = build_model(arch, 10, (3, 32, 32), width_mult=0.25, rng=RNG).num_parameters()
        assert p["resnet10"] < p["resnet18"] < p["resnet34"]

    def test_resnet_block_counts(self):
        assert len(build_model("resnet10", 10, (3, 16, 16), width_mult=0.25, rng=RNG).atoms) == 6
        assert len(build_model("resnet18", 10, (3, 16, 16), width_mult=0.25, rng=RNG).atoms) == 10
        assert len(build_model("resnet34", 10, (3, 16, 16), width_mult=0.125, rng=RNG).atoms) == 18
