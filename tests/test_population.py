"""Population engine: lazy O(cohort) client materialisation at any scale.

The load-bearing properties:

* **eager ≡ lazy** — same weights, history, and merge log at any backend
  and worker count, because every client is a pure function of
  ``(population seed, cid)``;
* **cache size cannot matter** — LRU eviction only drops cache entries,
  never state, so runs at cohort-sized, doubled, and unbounded caches are
  bit-identical, and an evicted-then-retouched client rematerialises
  exactly;
* **O(cohort) everywhere** — cohort sampling, materialised-client count,
  and ``total_samples`` are independent of the population size, so a
  million-client population costs what a hundred-client one does;
* the legacy partition scheme reproduces the pre-engine eager shards and
  sampling stream **bit for bit**.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.baselines import JointFAT
from repro.data import ArrayDataset, VirtualPartition, make_cifar10_like
from repro.data.partition import pathological_partition
from repro.flsim import (
    SMALL_POPULATION_COMPAT,
    ClientPopulation,
    FaultPlan,
    FLClient,
    FLConfig,
    RunJournal,
    ThreatPlan,
    sample_cohort_ids,
)
from repro.hardware import DEVICE_POOL_CIFAR10, DeviceSampler
from repro.models import build_cnn

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

TASK = make_cifar10_like(image_size=8, train_per_class=20, test_per_class=10, seed=0)


def _builder(rng):
    return build_cnn(3, 10, (3, 8, 8), base_channels=4, rng=rng)


def _config(**kw):
    base = dict(
        num_clients=6, clients_per_round=4, local_iters=2, batch_size=8,
        lr=0.02, rounds=2, train_pgd_steps=2, eval_pgd_steps=2,
        eval_every=0, seed=0,
    )
    base.update(kw)
    return FLConfig(**base)


def _run(**kw):
    exp = JointFAT(TASK, _builder, _config(**kw))
    exp.run()
    return exp


def _assert_runs_equal(a, b, label=""):
    sa, sb = a.global_model.state_dict(), b.global_model.state_dict()
    assert set(sa) == set(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k], err_msg=f"{label}{k}")
    assert [(r.round, r.sim_time_s) for r in a.history] == [
        (r.round, r.sim_time_s) for r in b.history
    ]
    assert a.async_log == b.async_log


# ---------------------------------------------------------------------------
# O(cohort) cohort sampling
# ---------------------------------------------------------------------------


class TestSampleCohortIds:
    def test_small_population_matches_legacy_choice(self):
        # The compat contract: at or below the threshold the draw is the
        # historical rng.choice call on the very same generator stream.
        for seed in range(5):
            r1, r2 = np.random.default_rng(seed), np.random.default_rng(seed)
            got = sample_cohort_ids(r1, 100, 10)
            want = r2.choice(100, size=10, replace=False)
            np.testing.assert_array_equal(got, want)
            # and the generators are left in the same state
            assert r1.integers(1 << 30) == r2.integers(1 << 30)

    def test_large_population_draw_is_valid_and_deterministic(self):
        pop = SMALL_POPULATION_COMPAT * 100
        a = sample_cohort_ids(np.random.default_rng(3), pop, 64)
        b = sample_cohort_ids(np.random.default_rng(3), pop, 64)
        np.testing.assert_array_equal(a, b)
        assert len(set(a.tolist())) == 64
        assert a.min() >= 0 and a.max() < pop

    def test_cohort_equals_population(self):
        got = sample_cohort_ids(np.random.default_rng(0), 5, 5)
        assert sorted(got.tolist()) == [0, 1, 2, 3, 4]

    def test_rejects_oversized_cohort(self):
        with pytest.raises(ValueError):
            sample_cohort_ids(np.random.default_rng(0), 4, 5)


# ---------------------------------------------------------------------------
# Virtual shard derivation
# ---------------------------------------------------------------------------


class TestVirtualPartition:
    def test_shards_are_pure_functions_of_the_rng_stream(self):
        part = VirtualPartition(TASK.train.y, samples_per_client=16)
        a = part.shard_for(np.random.default_rng([1, 2, 3]))
        b = part.shard_for(np.random.default_rng([1, 2, 3]))
        np.testing.assert_array_equal(a, b)

    def test_shard_shape_and_bounds(self):
        part = VirtualPartition(TASK.train.y, samples_per_client=16)
        shard = part.shard_for(np.random.default_rng(0))
        assert len(shard) == 16
        assert shard.min() >= 0 and shard.max() < len(TASK.train)
        np.testing.assert_array_equal(shard, np.sort(shard))

    def test_pathological_skew(self):
        # ~80% of samples from ~20% of classes, like the eager partition.
        part = VirtualPartition(TASK.train.y, samples_per_client=100)
        shard = part.shard_for(np.random.default_rng(7))
        counts = np.bincount(TASK.train.y[shard], minlength=10)
        top2 = np.sort(counts)[-2:].sum()
        assert top2 >= 60  # clearly skewed, not uniform (uniform: ~20)

    def test_single_class_dataset(self):
        labels = np.zeros(10, dtype=np.int64)
        part = VirtualPartition(labels, samples_per_client=4)
        shard = part.shard_for(np.random.default_rng(0))
        assert len(shard) == 4

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            VirtualPartition(TASK.train.y, samples_per_client=0)


# ---------------------------------------------------------------------------
# FLClient laziness (the eager-path bugfix)
# ---------------------------------------------------------------------------


class TestLazyFLClient:
    def test_dataset_deferred_until_first_touch(self):
        c = FLClient(cid=0, indices=np.array([1, 3, 5]), source=TASK.train)
        assert not c.materialised
        assert c.num_samples == 3  # no materialisation needed
        assert not c.materialised
        ds = c.dataset
        assert c.materialised
        assert ds is c.dataset  # cached
        np.testing.assert_array_equal(ds.y, TASK.train.y[[1, 3, 5]])

    def test_concrete_dataset_constructor_still_works(self):
        ds = TASK.train.subset([0, 1])
        c = FLClient(cid=3, dataset=ds)
        assert c.materialised and c.dataset is ds and c.num_samples == 2

    def test_pickle_materialises_and_drops_source(self):
        import pickle

        c = FLClient(cid=0, indices=np.array([2, 4]), source=TASK.train)
        c2 = pickle.loads(pickle.dumps(c))
        assert c2.cid == 0 and c2.materialised
        np.testing.assert_array_equal(c2.dataset.y, c.dataset.y)

    def test_rejects_missing_shard_spec(self):
        with pytest.raises(ValueError):
            FLClient(cid=0)

    def test_eager_population_defers_shard_copies(self):
        pop = ClientPopulation(TASK.train, num_clients=6, seed=13)
        assert not any(pop.client(i).materialised for i in range(6))
        assert pop.total_samples == sum(pop.client(i).num_samples for i in range(6))


# ---------------------------------------------------------------------------
# ClientPopulation: schemes, LRU, availability
# ---------------------------------------------------------------------------


class TestClientPopulation:
    def test_partition_scheme_reproduces_legacy_shards(self):
        pop = ClientPopulation(TASK.train, num_clients=6, seed=13)
        legacy = pathological_partition(
            TASK.train.y, 6, rng=np.random.default_rng(13)
        )
        for i, idx in enumerate(legacy):
            np.testing.assert_array_equal(pop.client(i).dataset.y, TASK.train.y[idx])

    def test_auto_scheme_resolution(self):
        small = ClientPopulation(TASK.train, num_clients=6, seed=13)
        big = ClientPopulation(TASK.train, num_clients=10 * len(TASK.train), seed=13)
        assert small.scheme == "partition" and big.scheme == "virtual"

    def test_partition_scheme_refuses_oversized_population(self):
        with pytest.raises(ValueError):
            ClientPopulation(
                TASK.train, num_clients=len(TASK.train) + 1, seed=13,
                scheme="partition",
            )

    def test_virtual_total_samples_is_analytic(self):
        pop = ClientPopulation(
            TASK.train, num_clients=1_000_000, seed=13, scheme="virtual",
            materialisation="lazy", samples_per_client=32,
        )
        assert pop.total_samples == 32_000_000
        assert pop.stats()["live"] == 0  # nothing materialised yet

    def test_million_client_touch_is_o_cohort(self):
        pop = ClientPopulation(
            TASK.train, num_clients=1_000_000, seed=13, scheme="virtual",
            materialisation="lazy", cohort_size=10,
        )
        ids = pop.sample_ids(np.random.default_rng(0), 10, round_idx=0)
        clients = [pop.client(int(i)) for i in ids]
        stats = pop.stats()
        assert stats["misses"] == 10 and stats["peak_live"] <= pop.cache_capacity
        assert all(c.num_samples == pop.samples_per_client for c in clients)

    def test_lru_eviction_then_retouch_rematerialises_identically(self):
        pop = ClientPopulation(
            TASK.train, num_clients=1000, seed=13, scheme="virtual",
            materialisation="lazy", cache_size=2, samples_per_client=8,
        )
        first = pop.client(7)
        shard = np.array(first.dataset.y, copy=True)
        pop.client(8), pop.client(9)  # capacity 2: evicts cid 7
        assert pop.stats()["evictions"] >= 1
        again = pop.client(7)
        assert again is not first  # a genuinely fresh object...
        np.testing.assert_array_equal(again.dataset.y, shard)  # ...same state

    def test_lru_moves_hits_to_back(self):
        pop = ClientPopulation(
            TASK.train, num_clients=100, seed=13, scheme="virtual",
            materialisation="lazy", cache_size=2, samples_per_client=4,
        )
        a = pop.client(0)
        pop.client(1)
        assert pop.client(0) is a  # hit
        pop.client(2)  # evicts 1, not 0
        assert pop.client(0) is a
        assert pop.stats()["hits"] == 2

    def test_availability_windows_deterministic_and_respected(self):
        pop = ClientPopulation(
            TASK.train, num_clients=64, seed=13,
            availability_fraction=0.5, availability_period=4,
        )
        grid = [[pop.available(r, c) for c in range(64)] for r in range(8)]
        grid2 = [[pop.available(r, c) for c in range(64)] for r in range(8)]
        assert grid == grid2
        # a 0.5 duty cycle over period 4: every client up exactly half the time
        for c in range(64):
            assert sum(grid[r][c] for r in range(4)) == 2
        # windows are phase-shifted, not global outages
        assert any(grid[0]) and not all(grid[0])
        ids = pop.sample_ids(np.random.default_rng(1), 8, round_idx=3)
        assert all(pop.available(3, int(i)) for i in ids)
        assert len(set(ids.tolist())) == 8

    def test_unfillable_cohort_raises(self):
        pop = ClientPopulation(
            TASK.train, num_clients=4, seed=13,
            availability_fraction=0.25, availability_period=4,
        )
        with pytest.raises(RuntimeError):
            # cohort of 4 but only ~1 of 4 clients up per round
            pop.sample_ids(np.random.default_rng(0), 4, round_idx=0)

    def test_sequence_surface(self):
        pop = ClientPopulation(TASK.train, num_clients=6, seed=13)
        assert len(pop) == 6
        assert [c.cid for c in pop] == list(range(6))
        assert pop[3].cid == 3
        with pytest.raises(IndexError):
            pop.client(6)


# ---------------------------------------------------------------------------
# Per-client device streams
# ---------------------------------------------------------------------------


class TestDeviceStreams:
    def test_profile_is_persistent_identity(self):
        sampler = DeviceSampler(DEVICE_POOL_CIFAR10, "unbalanced")
        a = [sampler.profile_for(13, cid) for cid in range(50)]
        b = [sampler.profile_for(13, cid) for cid in range(50)]
        assert a == b
        assert len({d.name for d in a}) > 1  # not everyone gets one device

    def test_state_varies_by_round_on_a_fixed_device(self):
        sampler = DeviceSampler(DEVICE_POOL_CIFAR10)
        s0 = sampler.state_for(13, 0, 42)
        s1 = sampler.state_for(13, 1, 42)
        assert s0.device == s1.device == sampler.profile_for(13, 42)
        assert s0.avail_perf_flops != s1.avail_perf_flops
        assert sampler.state_for(13, 0, 42) == s0


# ---------------------------------------------------------------------------
# End-to-end bit-identity: eager ≡ lazy across backends, cache sizes
# ---------------------------------------------------------------------------


class TestEagerLazyBitIdentity:
    @pytest.mark.parametrize(
        "backend,workers",
        [("serial", 1), ("thread", 2), ("thread", 4)]
        + ([("process", 2)] if HAS_FORK else []),
    )
    def test_across_backends_and_workers(self, backend, workers):
        eager = _run(executor_backend=backend, round_parallelism=workers)
        lazy = _run(
            executor_backend=backend, round_parallelism=workers,
            client_materialisation="lazy",
        )
        _assert_runs_equal(eager, lazy, label=f"{backend}x{workers}: ")

    def test_cache_size_cannot_matter(self):
        runs = [
            _run(client_materialisation="lazy", client_cache_size=size)
            for size in (4, 8, None)  # cohort, 2x cohort, default cap
        ]
        _assert_runs_equal(runs[0], runs[1], label="cache 4 vs 8: ")
        _assert_runs_equal(runs[0], runs[2], label="cache 4 vs default: ")
        stats = runs[0].clients.stats()
        assert stats["peak_live"] <= 4

    def test_virtual_scheme_eager_equals_lazy(self):
        kw = dict(population_scheme="virtual", samples_per_client=16)
        _assert_runs_equal(
            _run(**kw), _run(client_materialisation="lazy", **kw),
            label="virtual: ",
        )

    def test_lazy_composes_with_fault_and_threat_plans(self):
        kw = dict(
            fault_plan=FaultPlan(seed=3, dropout_prob=0.3),
            threat_plan=ThreatPlan(seed=4, byzantine_prob=0.4, attack="label_flip"),
            aggregation_rule="median",
        )
        _assert_runs_equal(
            _run(**kw), _run(client_materialisation="lazy", **kw),
            label="faults+threats: ",
        )

    def test_lazy_composes_with_depth2_async_pipeline(self):
        sampler = DeviceSampler(DEVICE_POOL_CIFAR10)

        def run(**kw):
            cfg = _config(
                rounds=3, aggregation_mode="async", max_staleness=2,
                pipeline_depth=2, executor_backend="thread",
                round_parallelism=2, **kw,
            )
            exp = JointFAT(TASK, _builder, cfg, device_sampler=sampler)
            exp.run()
            return exp

        _assert_runs_equal(
            run(), run(client_materialisation="lazy", client_cache_size=4),
            label="depth-2 async: ",
        )

    def test_lazy_virtual_with_availability_is_deterministic(self):
        kw = dict(
            population_scheme="virtual", samples_per_client=16,
            client_materialisation="lazy", num_clients=500,
            availability_fraction=0.5, availability_period=4,
        )
        _assert_runs_equal(_run(**kw), _run(**kw), label="availability: ")

    def test_checkpoint_resume_lazy_bit_identical(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        kw = dict(
            client_materialisation="lazy", rounds=4,
            journal_path=journal, checkpoint_every=2,
        )
        full = _run(**{**kw, "journal_path": str(tmp_path / "full.jsonl")})
        # Simulate a crash after round 2: run 2 rounds, then resume to 4.
        part = JointFAT(TASK, _builder, _config(**kw))
        part.run(rounds=2)
        part.close()
        resumed = JointFAT(TASK, _builder, _config(**kw))
        resumed.resume(journal, rounds=4)
        _assert_runs_equal(full, resumed, label="resume: ")


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_describe_parallelism_reports_population(self):
        exp = JointFAT(TASK, _builder, _config(client_materialisation="lazy"))
        text = exp.describe_parallelism()
        assert "population: 6 clients" in text
        assert "lazy" in text and "cache cap" in text

    def test_journal_records_population_metadata(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        _run(journal_path=journal, client_materialisation="lazy")
        events = RunJournal.read(journal)
        start = events[0]
        assert start["kind"] == "run_start"
        assert start["population"] == 6 and start["cohort"] == 4
        assert start["scheme"] == "partition"
        assert start["materialisation"] == "lazy"
        assert start["cache_capacity"] >= 4
        samples = [e for e in events if e["kind"] == "sample"]
        assert samples and all(e["population"] == 6 for e in samples)
        assert all(
            set(e["cache"]) >= {"hits", "misses", "evictions", "live", "peak_live"}
            for e in samples
        )

    def test_materialisation_and_cache_are_nonsemantic_for_resume(self):
        from repro.flsim import config_fingerprint

        a = config_fingerprint(_config(), "jfat")
        b = config_fingerprint(
            _config(client_materialisation="lazy", client_cache_size=7), "jfat"
        )
        c = config_fingerprint(_config(population_scheme="virtual"), "jfat")
        assert a == b  # pure caching: resume may switch freely
        assert a != c  # shards differ: scheme is semantic


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_rejects_bad_population_fields(self):
        with pytest.raises(ValueError):
            _config(population_scheme="magic")
        with pytest.raises(ValueError):
            _config(client_materialisation="psychic")
        with pytest.raises(ValueError):
            _config(client_cache_size=0)
        with pytest.raises(ValueError):
            _config(samples_per_client=0)
        with pytest.raises(ValueError):
            _config(availability_fraction=0.0)
        with pytest.raises(ValueError):
            _config(availability_fraction=1.5)
        with pytest.raises(ValueError):
            _config(availability_period=0)
