"""Compute-dtype policy: float32 end-to-end, float64 opt-in.

Every exported layer must map float32 inputs to float32 outputs, input
gradients, and parameter gradients under the default policy — a single
float64 leak anywhere silently doubles memory and halves throughput for
everything downstream, which is exactly the failure mode the policy
exists to prevent.
"""

import numpy as np
import pytest

from repro import nn
from repro.attacks import ModelWithLoss, PGDConfig, pgd_attack
from repro.attacks.fgsm import fgsm_attack
from repro.core.aggregator import aggregate_heads
from repro.data.synthetic import make_cifar10_like
from repro.flsim.aggregation import fedavg
from repro.nn import (
    AvgPool2d,
    BasicBlock,
    BatchNorm2d,
    Conv2d,
    ConvBNReLU,
    CrossEntropyLoss,
    DualBatchNorm2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tanh,
    compute_dtype,
    dtype_scope,
)
from repro.nn.functional import one_hot

RNG = np.random.default_rng(7)


def _train_bn(n):
    bn = BatchNorm2d(n)
    bn.train()
    return bn


def _eval_bn(n):
    bn = BatchNorm2d(n)
    bn.eval()
    return bn


# (name, layer factory, input shape) — covers every layer exported by
# repro.nn that has a forward/backward pair.
LAYER_CASES = [
    ("Linear", lambda: Linear(6, 4, rng=RNG), (3, 6)),
    ("Linear_nobias", lambda: Linear(6, 4, bias=False, rng=RNG), (3, 6)),
    ("Flatten", Flatten, (3, 2, 2, 2)),
    ("Identity", Identity, (3, 5)),
    ("Conv2d", lambda: Conv2d(3, 4, 3, padding=1, rng=RNG), (2, 3, 6, 6)),
    ("Conv2d_nobias", lambda: Conv2d(3, 4, 3, bias=False, rng=RNG), (2, 3, 6, 6)),
    ("MaxPool2d", lambda: MaxPool2d(2), (2, 3, 4, 4)),
    ("AvgPool2d", lambda: AvgPool2d(2), (2, 3, 4, 4)),
    ("GlobalAvgPool2d", GlobalAvgPool2d, (2, 3, 4, 4)),
    ("BatchNorm2d_train", lambda: _train_bn(3), (4, 3, 4, 4)),
    ("BatchNorm2d_eval", lambda: _eval_bn(3), (4, 3, 4, 4)),
    ("DualBatchNorm2d", lambda: DualBatchNorm2d(3), (4, 3, 4, 4)),
    ("ReLU", ReLU, (3, 5)),
    ("LeakyReLU", lambda: LeakyReLU(0.1), (3, 5)),
    ("Tanh", Tanh, (3, 5)),
    ("ConvBNReLU", lambda: ConvBNReLU(3, 4, rng=RNG), (2, 3, 6, 6)),
    ("BasicBlock", lambda: BasicBlock(3, 3, rng=RNG), (2, 3, 6, 6)),
    ("BasicBlock_down", lambda: BasicBlock(3, 6, stride=2, rng=RNG), (2, 3, 6, 6)),
    (
        "Sequential",
        lambda: Sequential(Conv2d(1, 2, 3, padding=1, rng=RNG), ReLU(), Flatten(), Linear(2 * 16, 3, rng=RNG)),
        (2, 1, 4, 4),
    ),
]


@pytest.mark.parametrize("name,factory,shape", LAYER_CASES, ids=[c[0] for c in LAYER_CASES])
def test_layer_preserves_float32(name, factory, shape):
    layer = factory()
    x = RNG.normal(size=shape).astype(np.float32)
    out = layer(x)
    assert out.dtype == np.float32, f"{name} forward promoted to {out.dtype}"
    grad_in = layer.backward(np.ones_like(out))
    assert grad_in.dtype == np.float32, f"{name} backward promoted to {grad_in.dtype}"
    for pname, p in layer.named_parameters():
        assert p.data.dtype == np.float32, f"{name}.{pname} data is {p.data.dtype}"
        assert p.grad.dtype == np.float32, f"{name}.{pname} grad is {p.grad.dtype}"


@pytest.mark.parametrize("name,factory,shape", LAYER_CASES, ids=[c[0] for c in LAYER_CASES])
def test_layer_respects_float64_scope(name, factory, shape):
    with dtype_scope(np.float64):
        layer = factory()
        x = RNG.normal(size=shape)
        out = layer(x)
        assert out.dtype == np.float64
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.dtype == np.float64


def test_default_policy_is_float32():
    assert compute_dtype() == np.float32


def test_dtype_scope_restores_on_exit():
    with dtype_scope("float64"):
        assert compute_dtype() == np.float64
    assert compute_dtype() == np.float32


def test_invalid_dtype_rejected():
    with pytest.raises(ValueError):
        nn.set_compute_dtype(np.int32)


def test_one_hot_follows_policy():
    labels = np.array([0, 2, 1])
    assert one_hot(labels, 3).dtype == np.float32
    with dtype_scope(np.float64):
        assert one_hot(labels, 3).dtype == np.float64
    # explicit dtype still wins
    assert one_hot(labels, 3, dtype=np.float64).dtype == np.float64


def test_cross_entropy_grad_keeps_dtype():
    ce = CrossEntropyLoss()
    logits = RNG.normal(size=(4, 3)).astype(np.float32)
    loss = ce(logits, np.array([0, 1, 2, 0]))
    assert isinstance(loss, float)
    assert ce.backward().dtype == np.float32


def test_synthetic_data_follows_policy():
    task = make_cifar10_like(image_size=8, train_per_class=2, test_per_class=1, seed=0)
    assert task.train.x.dtype == np.float32
    assert task.test.x.dtype == np.float32


def test_attacks_preserve_float32():
    model = Sequential(Flatten(), Linear(12, 3, rng=RNG))
    mwl = ModelWithLoss(model)
    x = RNG.uniform(0, 1, size=(4, 3, 2, 2)).astype(np.float32)
    y = np.array([0, 1, 2, 0])
    adv = pgd_attack(mwl, x, y, PGDConfig(eps=0.1, steps=3), rng=np.random.default_rng(0))
    assert adv.dtype == np.float32
    assert fgsm_attack(mwl, x, y, eps=0.1).dtype == np.float32


def test_aggregation_accumulates_in_policy_dtype():
    states = [
        {"w": np.ones(3, dtype=np.float32)},
        {"w": np.full(3, 2.0, dtype=np.float32)},
    ]
    out = fedavg(states, [1, 1])
    assert out["w"].dtype == np.float32
    np.testing.assert_allclose(out["w"], 1.5)
    # float64 inputs are never downcast
    out64 = fedavg([{"w": s["w"].astype(np.float64)} for s in states], [1, 1])
    assert out64["w"].dtype == np.float64


def test_head_aggregation_policy_dtype():
    heads = [Linear(4, 2, rng=RNG)]
    states = [heads[0].state_dict(), heads[0].state_dict()]
    aggregate_heads(heads, states, [0, 0], [0.5, 0.5])
    assert heads[0].weight.data.dtype == np.float32
